"""Tests for the P2P network simulator, devices and failure injection."""

import pytest

from repro.datasets import uniform_points
from repro.errors import ProtocolError
from repro.geometry.point import Point
from repro.graph.build import build_wpg
from repro.network.failures import FailurePlan
from repro.network.message import Message, MessageStats
from repro.network.node import UserDevice, populate_network
from repro.network.remote_graph import RemoteGraphView
from repro.network.simulator import MessageDropped, PeerCrashed, PeerNetwork


class TestMessageStats:
    def test_record_and_snapshot(self):
        stats = MessageStats()
        stats.record(Message(1, 2, "adjacency"))
        stats.record(Message(2, 1, "adjacency:reply", size=3.0))
        stats.record_drop(Message(1, 2, "adjacency"))
        snap = stats.snapshot()
        assert snap["sent"] == 2
        assert snap["dropped"] == 1
        assert snap["total_size"] == 4.0
        assert snap["kind:adjacency"] == 1

    def test_reset(self):
        stats = MessageStats()
        stats.record(Message(1, 2, "x"))
        stats.reset()
        assert stats.sent == 0
        assert not stats.by_kind


class TestPeerNetwork:
    def test_call_roundtrip(self):
        net = PeerNetwork()
        net.register(7, "echo", lambda sender, payload: (sender, payload))
        assert net.call(1, 7, "echo", "hi") == (1, "hi")
        assert net.stats.sent == 2  # request + reply

    def test_missing_handler_raises(self):
        net = PeerNetwork()
        with pytest.raises(ProtocolError):
            net.call(1, 7, "echo")

    def test_drops_exhaust_retries(self):
        net = PeerNetwork(FailurePlan(drop_probability=0.999, seed=1))
        net.register(7, "echo", lambda s, p: p)
        with pytest.raises(MessageDropped):
            net.call(1, 7, "echo", retries=3)
        assert net.stats.dropped >= 1

    def test_retries_eventually_succeed(self):
        net = PeerNetwork(FailurePlan(drop_probability=0.5, seed=2))
        net.register(7, "echo", lambda s, p: p)
        assert net.call(1, 7, "echo", "x", retries=50) == "x"

    def test_crashed_peer_raises_immediately(self):
        net = PeerNetwork(FailurePlan(crashed=[7]))
        net.register(7, "echo", lambda s, p: p)
        with pytest.raises(PeerCrashed):
            net.call(1, 7, "echo")

    def test_negative_retries_rejected(self):
        with pytest.raises(ProtocolError):
            PeerNetwork(default_retries=-1)


class TestFailurePlan:
    def test_validation(self):
        with pytest.raises(Exception):
            FailurePlan(drop_probability=1.0)

    def test_no_failures_by_default(self):
        plan = FailurePlan()
        assert not any(plan.should_drop(1, 2) for _ in range(100))

    def test_crash_extends(self):
        plan = FailurePlan().crash(5)
        assert plan.should_drop(1, 5)
        assert plan.should_drop(5, 1)
        assert not plan.should_drop(1, 2)

    def test_deterministic_replay(self):
        plan_a = FailurePlan(drop_probability=0.5, seed=9)
        plan_b = FailurePlan(drop_probability=0.5, seed=9)
        a = [plan_a.should_drop(1, 2) for _ in range(20)]
        b = [plan_b.should_drop(1, 2) for _ in range(20)]
        assert a == b
        assert any(a) and not all(a)  # actually random, not constant


class TestUserDevice:
    @pytest.fixture()
    def wired(self):
        ds = uniform_points(30, seed=6)
        graph = build_wpg(ds, delta=0.4, max_peers=5)
        net = PeerNetwork()
        devices = populate_network(net, graph, list(ds.points))
        return ds, graph, net, devices

    def test_adjacency_handler(self, wired):
        _ds, graph, net, _devices = wired
        assert net.call(0, 3, "adjacency") == graph.adjacency_message(3)

    def test_verify_bound_one_bit(self, wired):
        ds, _graph, net, _devices = wired
        x = ds[3].x
        assert net.call(0, 3, "verify_bound", (0, 1.0, x + 0.01)) is True
        assert net.call(0, 3, "verify_bound", (0, 1.0, x - 0.01)) is False
        # Negated direction bounds the minimum.
        assert net.call(0, 3, "verify_bound", (0, -1.0, -(x - 0.01))) is True

    def test_verify_bound_malformed_payload(self, wired):
        _ds, _graph, net, _devices = wired
        with pytest.raises(ProtocolError):
            net.call(0, 3, "verify_bound", "nonsense")
        with pytest.raises(ProtocolError):
            net.call(0, 3, "verify_bound", (2, 1.0, 0.5))

    def test_device_ids(self):
        from repro.graph.wpg import WeightedProximityGraph

        g = WeightedProximityGraph()
        g.add_vertex(4)
        device = UserDevice(4, Point(0.1, 0.2), g)
        assert device.user_id == 4


class TestRemoteGraphView:
    @pytest.fixture()
    def wired(self):
        ds = uniform_points(40, seed=8)
        graph = build_wpg(ds, delta=0.3, max_peers=5)
        net = PeerNetwork()
        populate_network(net, graph, list(ds.points))
        return graph, net

    def test_reads_match_graph(self, wired):
        graph, net = wired
        view = RemoteGraphView(net, 0, graph.adjacency_message(0))
        for v in list(graph.vertices())[:10]:
            assert dict(view.neighbor_weights(v)) == graph.adjacency_message(v)
            assert view.degree(v) == graph.degree(v)

    def test_fetch_counts_distinct_peers(self, wired):
        graph, net = wired
        view = RemoteGraphView(net, 0, graph.adjacency_message(0))
        list(view.neighbors(0))  # own adjacency: free
        assert view.fetched == 0
        list(view.neighbors(1))
        list(view.neighbors(1))  # cached
        list(view.neighbors(2))
        assert view.fetched == 2

    def test_weight_lookup(self, wired):
        graph, net = wired
        view = RemoteGraphView(net, 0, graph.adjacency_message(0))
        edge = next(graph.edges())
        assert view.weight(edge.u, edge.v) == edge.weight
