"""Unit tests for repro.geometry.point."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.point import Point

coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, coords, coords)


class TestBasics:
    def test_fields(self):
        p = Point(0.25, 0.75)
        assert p.x == 0.25
        assert p.y == 0.75

    def test_iteration_unpacks(self):
        x, y = Point(1.0, 2.0)
        assert (x, y) == (1.0, 2.0)

    def test_as_tuple(self):
        assert Point(1.5, -2.0).as_tuple() == (1.5, -2.0)

    def test_hashable_and_equal(self):
        assert Point(1.0, 2.0) == Point(1.0, 2.0)
        assert len({Point(1.0, 2.0), Point(1.0, 2.0)}) == 1

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Point(0.0, 0.0).x = 1.0  # type: ignore[misc]


class TestDistances:
    def test_distance_345(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == 5.0

    def test_squared_distance(self):
        assert Point(0.0, 0.0).squared_distance_to(Point(3.0, 4.0)) == 25.0

    def test_manhattan(self):
        assert Point(0.0, 0.0).manhattan_distance_to(Point(3.0, -4.0)) == 7.0

    def test_distance_to_self_zero(self):
        p = Point(0.3, 0.9)
        assert p.distance_to(p) == 0.0

    @given(points, points)
    def test_symmetry(self, a, b):
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(points, points)
    def test_squared_consistent_with_distance(self, a, b):
        assert math.sqrt(a.squared_distance_to(b)) == pytest.approx(
            a.distance_to(b), rel=1e-9, abs=1e-12
        )


class TestOperations:
    def test_translated(self):
        assert Point(1.0, 1.0).translated(0.5, -1.0) == Point(1.5, 0.0)

    def test_midpoint(self):
        assert Point(0.0, 0.0).midpoint(Point(2.0, 4.0)) == Point(1.0, 2.0)

    def test_coordinate_axes(self):
        p = Point(1.0, 2.0)
        assert p.coordinate(0) == 1.0
        assert p.coordinate(1) == 2.0

    def test_coordinate_bad_axis(self):
        with pytest.raises(ValueError):
            Point(0.0, 0.0).coordinate(2)
