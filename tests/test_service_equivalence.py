"""Shard-count invisibility: the service == one engine, bit for bit.

The headline property of the sharded runtime (ISSUE 9): for ANY world
the fuzz strategy can draw and ANY shard count, `CloakingService`
answers ``request`` and ``request_many`` *bit-identically* to a single
in-process :class:`CloakingEngine` on the same world — regions (float
for float), memberships, cost meters, cache flags, and failure outcomes
alike.  An observer of the answer stream cannot tell how many worker
processes sit behind the dispatcher, which is exactly what makes the
shard count a pure deployment knob rather than a semantics change.

Both sides are built from the same :class:`ServiceSpec` (a centralized
world is coerced to the distributed flavor on BOTH sides — see
``spec_from_world``), and both sides are read through the same
:func:`outcome_of` canonicaliser, so "equal" here is plain ``==`` on
JSON-stable dicts, never an interpretation.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings

from repro.service import CloakingService, build_engine, spec_from_world
from repro.service.worker import outcomes_of
from repro.verify.worlds import build_world, world_strategy

SHARD_COUNTS = (1, 2, 4)


@settings(max_examples=15)
@given(world=world_strategy(max_users=32))
def test_every_shard_count_answers_like_a_single_engine(world):
    built = build_world(world)
    hosts = list(built.hosts)
    # Repeats exercise the registry/region cache paths deliberately.
    hosts = hosts + hosts[: max(1, len(hosts) // 2)]

    transcripts = {}
    for shards in SHARD_COUNTS:
        spec = spec_from_world(world, shards=shards)
        reference = build_engine(spec)
        expected = outcomes_of(reference, hosts)
        with CloakingService(spec) as service:
            got = [service.request(host) for host in hosts]
            assert got == expected, (
                f"shards={shards}: per-request answers diverged from the "
                "single-process engine"
            )
            assert service.registry_clusters() == set(
                reference.clustering.registry.clusters()
            ), f"shards={shards}: merged registries differ as sets"
            assert service.cached_regions() == {
                members: (region.rect, region.anonymity)
                for members, region in reference.cached_regions().items()
            }, f"shards={shards}: merged region caches differ"
        transcripts[shards] = got

    # Shard-count invisibility, stated directly: the full answer
    # transcript is identical whatever the fleet size.
    assert transcripts[1] == transcripts[2] == transcripts[4]


@settings(max_examples=10)
@given(world=world_strategy(max_users=32))
def test_request_many_scatter_gather_preserves_batch_semantics(world):
    built = build_world(world)
    hosts = list(built.hosts)
    for shards in (2, 4):
        spec = spec_from_world(world, shards=shards)
        expected = outcomes_of(build_engine(spec), hosts)
        with CloakingService(spec) as service:
            assert service.request_many(hosts) == expected, (
                f"shards={shards}: request_many diverged from sequential "
                "single-engine semantics"
            )
            # A second identical batch must flow through the caches the
            # first one installed, exactly like the reference's would.
            reference = build_engine(spec)
            outcomes_of(reference, hosts)
            assert service.request_many(hosts) == outcomes_of(reference, hosts)


def test_centralized_worlds_are_coerced_consistently():
    from repro.verify.worlds import World

    world = World(seed=77, n=24, k=3, mode="centralized", delta=0.2)
    spec = spec_from_world(world, shards=2)
    assert spec.flavor == "distributed"
    built = build_world(world)
    hosts = list(built.hosts)
    expected = outcomes_of(build_engine(spec), hosts)
    with CloakingService(spec) as service:
        assert [service.request(h) for h in hosts] == expected
