"""Scalar/vectorized equivalence: the fast paths must be exact twins.

The vectorized WPG builder and the batch request path are pure
optimisations — they must produce *identical* results to their scalar
counterparts, bit for bit, including under noisy radio models whose RNG
stream order is part of the contract.  These property-style tests sweep
random populations and parameters and assert exact equality.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cloaking.engine import CloakingEngine
from repro.datasets.base import PointDataset
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.graph.build import build_wpg, build_wpg_fast
from repro.radio.measurement import ProximityMeter
from repro.radio.rss import LogDistanceRSSModel
from repro.radio.tdoa import TDOAModel


def _random_world(seed: int) -> tuple[PointDataset, float, int]:
    """A random population with random build parameters."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(30, 400))
    coords = rng.random((n, 2))
    dataset = PointDataset([Point(float(x), float(y)) for x, y in coords])
    delta = float(rng.uniform(0.02, 0.15))
    max_peers = int(rng.integers(1, 12))
    return dataset, delta, max_peers


def _edge_dict(graph) -> dict[tuple[int, int], float]:
    return {edge.key(): edge.weight for edge in graph.edges()}


class TestBuildEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_ideal_meter(self, seed):
        dataset, delta, max_peers = _random_world(seed)
        # validate=True already cross-checks internally; assert again
        # externally so a broken validator cannot mask a divergence.
        fast = build_wpg_fast(dataset, delta, max_peers, validate=True)
        scalar = build_wpg(dataset, delta, max_peers)
        assert set(fast.vertices()) == set(scalar.vertices())
        assert _edge_dict(fast) == _edge_dict(scalar)

    @pytest.mark.parametrize("seed", range(4))
    def test_noisy_shadowing_meter(self, seed):
        """Log-normal shadowing: RNG consumption order must match exactly."""
        dataset, delta, max_peers = _random_world(100 + seed)
        model_a = LogDistanceRSSModel(shadowing_sigma_db=6.0, seed=seed)
        model_b = LogDistanceRSSModel(shadowing_sigma_db=6.0, seed=seed)
        scalar = build_wpg(
            dataset, delta, max_peers, meter=ProximityMeter(dataset, model_a)
        )
        fast = build_wpg_fast(
            dataset, delta, max_peers, meter=ProximityMeter(dataset, model_b)
        )
        assert set(fast.vertices()) == set(scalar.vertices())
        assert _edge_dict(fast) == _edge_dict(scalar)

    @pytest.mark.parametrize("seed", range(4))
    def test_noisy_tdoa_meter(self, seed):
        dataset, delta, max_peers = _random_world(200 + seed)
        model_a = TDOAModel(jitter_sigma=1e-9, seed=seed)
        model_b = TDOAModel(jitter_sigma=1e-9, seed=seed)
        scalar = build_wpg(
            dataset, delta, max_peers, meter=ProximityMeter(dataset, model_a)
        )
        fast = build_wpg_fast(
            dataset, delta, max_peers, meter=ProximityMeter(dataset, model_b)
        )
        assert _edge_dict(fast) == _edge_dict(scalar)

    def test_empty_neighborhoods(self):
        """Far-apart users: no edges, every vertex still present."""
        dataset = PointDataset([Point(0.1, 0.1), Point(0.9, 0.9)])
        fast = build_wpg_fast(dataset, 0.01, 5, validate=True)
        assert fast.edge_count == 0
        assert set(fast.vertices()) == {0, 1}

    def test_parameter_validation(self):
        dataset = PointDataset([Point(0.1, 0.1), Point(0.2, 0.2)])
        with pytest.raises(ConfigurationError):
            build_wpg_fast(dataset, -1.0, 5)
        with pytest.raises(ConfigurationError):
            build_wpg_fast(dataset, 0.1, 0)


#: A tiny coordinate menu: drawing from few values makes exact duplicates
#: and shared coordinates (hence zero-distance and tied-weight edges) the
#: common case rather than a measure-zero event.
_menu = st.sampled_from([0.1, 0.2, 0.3, 0.5, 0.7])
_delta = st.sampled_from([0.05, 0.15, 0.45])
_max_peers = st.integers(1, 6)


class TestDegenerateEquivalence:
    """Hypothesis sweep of the inputs where vectorized code usually breaks."""

    @given(
        st.lists(st.tuples(_menu, _menu), min_size=1, max_size=25),
        _delta,
        _max_peers,
    )
    def test_duplicate_heavy_populations(self, pairs, delta, max_peers):
        dataset = PointDataset([Point(x, y) for x, y in pairs])
        fast = build_wpg_fast(dataset, delta, max_peers, validate=True)
        scalar = build_wpg(dataset, delta, max_peers)
        assert set(fast.vertices()) == set(scalar.vertices())
        assert _edge_dict(fast) == _edge_dict(scalar)

    @given(st.lists(_menu, min_size=2, max_size=20), _delta, _max_peers)
    def test_collinear_users(self, xs, delta, max_peers):
        dataset = PointDataset([Point(x, 0.5) for x in xs])
        fast = build_wpg_fast(dataset, delta, max_peers, validate=True)
        scalar = build_wpg(dataset, delta, max_peers)
        assert _edge_dict(fast) == _edge_dict(scalar)

    @given(st.integers(1, 4), st.integers(0, 50), _delta, _max_peers)
    def test_tiny_populations(self, n, seed, delta, max_peers):
        rng = np.random.default_rng(seed)
        coords = rng.random((n, 2))
        dataset = PointDataset([Point(float(x), float(y)) for x, y in coords])
        fast = build_wpg_fast(dataset, delta, max_peers, validate=True)
        scalar = build_wpg(dataset, delta, max_peers)
        assert set(fast.vertices()) == set(scalar.vertices()) == set(range(n))
        assert _edge_dict(fast) == _edge_dict(scalar)

    @given(st.integers(2, 12), _delta, _max_peers)
    def test_all_users_at_one_point(self, n, delta, max_peers):
        dataset = PointDataset([Point(0.4, 0.6)] * n)
        fast = build_wpg_fast(dataset, delta, max_peers, validate=True)
        scalar = build_wpg(dataset, delta, max_peers)
        assert _edge_dict(fast) == _edge_dict(scalar)
        assert set(fast.vertices()) == set(range(n))


class TestRequestManyEquivalence:
    @pytest.fixture(params=["distributed", "centralized"])
    def make_engine(self, request, small_dataset, small_graph, small_config):
        """Factory for identically configured engines (fresh state each)."""
        def make() -> CloakingEngine:
            return CloakingEngine(
                small_dataset, small_graph, small_config, mode=request.param
            )

        return make

    def test_matches_sequential_requests(self, make_engine):
        # Mix of fresh hosts, repeats (cache hits) and cluster mates
        # (registry hits) — all three request_many paths.  The probe
        # engine discovers a cluster mate without touching the state of
        # the two engines under comparison.
        mate = max(make_engine().clustering.request(0).members)
        hosts = [0, 1, 2, 0, mate, 3, mate, 1, 4, 0]
        sequential, batched = make_engine(), make_engine()
        expected = [sequential.request(host) for host in hosts]
        got = batched.request_many(hosts)
        assert got == expected

    def test_cache_hits_are_free(self, make_engine):
        engine = make_engine()
        results = engine.request_many([0, 0, 0])
        assert not results[0].region_from_cache
        assert results[1].region_from_cache and results[2].region_from_cache
        assert results[1].total_phase_messages == 0
        assert results[1].region == results[0].region
