"""Tests for the bounding cost model mathematics (Sections V-A and V-B)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounding.costmodel import AreaRequestCost, LengthRequestCost
from repro.bounding.distributions import ExponentialIncrement, UniformIncrement
from repro.bounding.nbounding import (
    ExactNBounding,
    n_bounding_exact,
    n_bounding_increment,
)
from repro.bounding.unary import unary_optimal_bound, unary_optimal_cost
from repro.errors import BoundingError, ConfigurationError


class TestDistributions:
    def test_uniform_pdf_cdf(self):
        d = UniformIncrement(2.0)
        assert d.pdf(1.0) == 0.5
        assert d.pdf(3.0) == 0.0
        assert d.cdf(1.0) == 0.5
        assert d.cdf(-1.0) == 0.0
        assert d.cdf(5.0) == 1.0
        assert d.scale == 2.0

    def test_exponential_pdf_cdf(self):
        d = ExponentialIncrement(2.0)
        assert d.pdf(0.0) == pytest.approx(2.0)
        assert d.cdf(0.0) == 0.0
        assert d.cdf(10.0) == pytest.approx(1.0, abs=1e-6)
        assert d.scale == 0.5

    @given(st.floats(min_value=0.01, max_value=10.0))
    def test_exponential_normalised(self, rate):
        """The pdf integrates to ~1 (trapezoid over a wide support)."""
        d = ExponentialIncrement(rate)
        xs = [i * (10.0 / rate) / 2000 for i in range(2001)]
        total = sum(
            (d.pdf(a) + d.pdf(b)) / 2 * (b - a) for a, b in zip(xs, xs[1:])
        )
        assert total == pytest.approx(1.0, abs=1e-2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UniformIncrement(0.0)
        with pytest.raises(ConfigurationError):
            ExponentialIncrement(-1.0)


class TestCostModels:
    def test_area_cost(self):
        rc = AreaRequestCost(3.0)
        assert rc.cost(2.0) == 12.0
        assert rc.derivative(2.0) == 12.0

    def test_length_cost(self):
        rc = LengthRequestCost(3.0)
        assert rc.cost(2.0) == 6.0
        assert rc.derivative(2.0) == 3.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AreaRequestCost(0.0)
        with pytest.raises(ConfigurationError):
            LengthRequestCost(-1.0)


class TestUnaryBounding:
    def test_example_51_closed_form(self):
        """Example 5.1: x* = sqrt(Cb / Cr)."""
        x = unary_optimal_bound(UniformIncrement(10.0), AreaRequestCost(4.0), cb=1.0)
        assert x == pytest.approx(0.5)

    def test_example_51_clipped_to_support(self):
        x = unary_optimal_bound(UniformIncrement(0.1), AreaRequestCost(4.0), cb=1.0)
        assert x == pytest.approx(0.1)

    @given(
        rate=st.floats(min_value=0.1, max_value=5.0),
        cb=st.floats(min_value=0.1, max_value=10.0),
        cr=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_example_52_satisfies_equation2(self, rate, cb, cr):
        """The Newton solution satisfies P(x) R'(x) = (Cb + R(x)) p(x)."""
        d = ExponentialIncrement(rate)
        rc = LengthRequestCost(cr)
        x = unary_optimal_bound(d, rc, cb)
        residual = d.cdf(x) * rc.derivative(x) - (cb + rc.cost(x)) * d.pdf(x)
        assert abs(residual) < 1e-6 * (1 + cb + cr)

    def test_generic_bisection_matches_closed_form(self):
        """Force the bisection path with a mixed pairing and cross-check.

        Uniform + length cost has closed form from Equation 2:
        (x/U) Cr = (Cb + Cr x)/U  =>  x = Cb / ... solve: x Cr = Cb + Cr x
        which has no solution — the derivative never catches the failure
        term inside the support, so the optimum clips to the support end.
        """
        x = unary_optimal_bound(UniformIncrement(1.0), LengthRequestCost(2.0), cb=1.0)
        assert x == pytest.approx(1.0, abs=1e-6)

    def test_unary_cost_formula(self):
        d = UniformIncrement(10.0)
        rc = AreaRequestCost(4.0)
        x, c_star, r_star = unary_optimal_cost(d, rc, cb=1.0)
        assert r_star == pytest.approx(rc.cost(x))
        assert c_star == pytest.approx((1.0 + r_star) / d.cdf(x))

    def test_cb_validation(self):
        with pytest.raises(ConfigurationError):
            unary_optimal_bound(UniformIncrement(1.0), AreaRequestCost(1.0), cb=0.0)


class TestNBounding:
    def test_example_53_closed_form(self):
        """Example 5.3: x = N (C* - R*) / (2 Cr U)."""
        d = UniformIncrement(10.0)
        rc = AreaRequestCost(4.0)
        _x, c_star, r_star = unary_optimal_cost(d, rc, cb=1.0)
        n = 5
        expected = min(n * (c_star - r_star) / (2 * rc.cr * d.upper), d.scale)
        assert n_bounding_increment(n, d, rc, cb=1.0) == pytest.approx(expected)

    def test_example_54_closed_form(self):
        """Example 5.4: x = ln((C* - R*) N lambda / Cr) / lambda."""
        d = ExponentialIncrement(1.5)
        rc = LengthRequestCost(2.0)
        _x, c_star, r_star = unary_optimal_cost(d, rc, cb=1.0)
        n = 8
        expected = math.log((c_star - r_star) * n * d.rate / rc.cr) / d.rate
        assert n_bounding_increment(n, d, rc, cb=1.0) == pytest.approx(
            min(expected, d.scale)
        )

    def test_n1_equals_unary(self):
        d = UniformIncrement(10.0)
        rc = AreaRequestCost(4.0)
        assert n_bounding_increment(1, d, rc, cb=1.0) == pytest.approx(
            unary_optimal_bound(d, rc, cb=1.0)
        )

    def test_floored_at_minimum(self):
        """When failure is cheap relative to request growth, clamp up.

        Uniform overshoot with a *length* cost takes the generic
        Equation 5 bisection; with Cb tiny, R'(x) exceeds the
        gain-weighted density everywhere, the root collapses to zero and
        the increment is clamped to the caller's floor rather than going
        non-positive.
        """
        d = UniformIncrement(1.0)
        rc = LengthRequestCost(1.0)
        x = n_bounding_increment(2, d, rc, cb=0.01, minimum=1e-6)
        assert x == pytest.approx(1e-6)

    def test_monotone_in_n(self):
        """More disagreeing users justify larger steps (uniform + area)."""
        d = UniformIncrement(100.0)
        rc = AreaRequestCost(4.0)
        steps = [n_bounding_increment(n, d, rc, cb=1.0) for n in (1, 2, 4, 8)]
        assert steps == sorted(steps)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            n_bounding_increment(0, UniformIncrement(1.0), AreaRequestCost(1.0), 1.0)


class TestExactDP:
    def test_level1_matches_unary(self):
        d = UniformIncrement(10.0)
        rc = AreaRequestCost(4.0)
        dp = ExactNBounding(d, rc, cb=1.0)
        x, cost = dp.level(1)
        x_u, c_u, _ = unary_optimal_cost(d, rc, cb=1.0)
        assert x == pytest.approx(x_u)
        assert cost == pytest.approx(c_u)

    def test_costs_increase_with_n(self):
        d = UniformIncrement(10.0)
        rc = AreaRequestCost(4.0)
        dp = ExactNBounding(d, rc, cb=1.0)
        costs = [dp.level(n)[1] for n in range(1, 8)]
        assert costs == sorted(costs)

    def test_optimum_is_a_minimum(self):
        """Equation 3 evaluated off the optimal x must not be cheaper."""
        d = UniformIncrement(10.0)
        rc = AreaRequestCost(4.0)
        dp = ExactNBounding(d, rc, cb=1.0)
        n = 4
        x_star, c_star = dp.level(n)
        for x in (x_star * 0.5, x_star * 0.9, x_star * 1.1, x_star * 2.0):
            if 0 < x <= d.scale:
                assert dp.expected_cost(n, x, c_star) >= c_star - 1e-6

    def test_exact_convenience_function(self):
        x, cost = n_bounding_exact(3, UniformIncrement(5.0), AreaRequestCost(2.0), 1.0)
        assert x > 0
        assert cost > 0

    def test_validation(self):
        dp = ExactNBounding(UniformIncrement(1.0), AreaRequestCost(1.0), cb=1.0)
        with pytest.raises(ConfigurationError):
            dp.level(0)
        with pytest.raises(ConfigurationError):
            ExactNBounding(UniformIncrement(1.0), AreaRequestCost(1.0), cb=0.0)
