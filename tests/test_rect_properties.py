"""Property-based rectangle algebra, cross-checked against point sampling.

The rect combinators (union, intersection, contains, clip) are the
geometric kernel under every cloaked region; here Hypothesis drives them
against from-the-definition predicates: membership in an intersection is
membership in both operands, a union covers both operands and is the
smallest such cover, and ``from_points`` equals the direct min/max scan.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.verify.oracles import oracle_bounding_box

coordinate = st.floats(-2.0, 2.0, allow_nan=False, width=32)


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coordinate), draw(coordinate)))
    y1, y2 = sorted((draw(coordinate), draw(coordinate)))
    return Rect(x1, x2, y1, y2)


points_strategy = st.lists(
    st.tuples(coordinate, coordinate), min_size=1, max_size=20
).map(lambda pairs: [Point(x, y) for x, y in pairs])


@given(points_strategy)
def test_from_points_is_the_minmax_scan(points):
    box = Rect.from_points(points)
    assert box == oracle_bounding_box(points)
    assert all(box.contains(p) for p in points)
    # Minimality: every face touches some point.
    assert any(p.x == box.x_min for p in points)
    assert any(p.x == box.x_max for p in points)
    assert any(p.y == box.y_min for p in points)
    assert any(p.y == box.y_max for p in points)


@given(rects(), rects())
def test_union_covers_both_and_is_minimal(a, b):
    u = a.union(b)
    assert u.contains_rect(a) and u.contains_rect(b)
    corners = [
        Point(a.x_min, a.y_min),
        Point(a.x_max, a.y_max),
        Point(b.x_min, b.y_min),
        Point(b.x_max, b.y_max),
    ]
    assert u == Rect.from_points(corners)
    assert a.union(b) == b.union(a)


@given(rects(), rects(), coordinate, coordinate)
def test_intersection_is_pointwise_and(a, b, x, y):
    p = Point(x, y)
    overlap = a.intersection(b)
    in_both = a.contains(p) and b.contains(p)
    if overlap is None:
        assert not a.intersects(b)
        assert not in_both
    else:
        assert a.intersects(b)
        assert overlap.contains(p) == in_both
        assert a.contains_rect(overlap) and b.contains_rect(overlap)


@given(rects(), rects())
def test_intersects_is_symmetric_and_matches_intersection(a, b):
    assert a.intersects(b) == b.intersects(a)
    assert (a.intersection(b) is not None) == a.intersects(b)
    if a.intersection(b) is not None:
        assert a.intersection(b) == b.intersection(a)


@given(rects(), rects())
def test_containment_absorbs(a, b):
    if a.contains_rect(b):
        assert a.union(b) == a
        assert a.intersection(b) == b
    assert a.contains_rect(a)
    assert a.union(a) == a and a.intersection(a) == a


@given(rects(), st.floats(0.0, 1.0, allow_nan=False))
def test_expanded_contains_original(rect, margin):
    grown = rect.expanded(margin)
    assert grown.contains_rect(rect)
    assert grown.width == pytest.approx(rect.width + 2 * margin)
    assert grown.height == pytest.approx(rect.height + 2 * margin)


@given(rects(), rects())
def test_clipped_to_equals_intersection(a, b):
    if a.intersects(b):
        assert a.clipped_to(b) == a.intersection(b)
    else:
        with pytest.raises(ValueError):
            a.clipped_to(b)


@given(rects(), coordinate, coordinate)
def test_min_distance_zero_iff_inside(rect, x, y):
    p = Point(x, y)
    d = rect.min_distance_to(p)
    assert d >= 0.0
    assert (d == 0.0) == rect.contains(p)
