"""Tests for the distributed t-connectivity k-clustering (Algorithm 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.base import ClusterRegistry
from repro.clustering.distributed import DistributedClustering
from repro.errors import ClusteringError, ConfigurationError
from repro.graph.components import t_component
from repro.graph.generators import small_world_graph
from repro.graph.wpg import WeightedProximityGraph


class TestBasics:
    def test_cluster_contains_host_and_k(self, small_graph, small_config):
        algo = DistributedClustering(small_graph, small_config.k)
        result = algo.request(0)
        assert 0 in result.members
        assert result.size >= small_config.k
        assert result.involved > 0
        assert not result.from_cache

    def test_cached_second_request(self, small_graph, small_config):
        algo = DistributedClustering(small_graph, small_config.k)
        first = algo.request(0)
        member = next(iter(first.members - {0}))
        second = algo.request(member)
        assert second.from_cache
        assert second.involved == 0
        assert second.members == first.members

    def test_unknown_host_raises(self, small_graph):
        with pytest.raises(ClusteringError):
            DistributedClustering(small_graph, 3).request(10_000)

    def test_k_validation(self, small_graph):
        with pytest.raises(ConfigurationError):
            DistributedClustering(small_graph, 0)

    def test_component_too_small_raises(self):
        g = WeightedProximityGraph.from_edges([(0, 1, 1.0)])
        with pytest.raises(ClusteringError):
            DistributedClustering(g, 3).request(0)

    def test_two_blobs_k4(self, two_blobs_graph):
        algo = DistributedClustering(two_blobs_graph, 4)
        result = algo.request(0)
        assert result.members == frozenset({0, 1, 2, 3})

    def test_registry_shared_across_instances(self, two_blobs_graph):
        registry = ClusterRegistry()
        first = DistributedClustering(two_blobs_graph, 4, registry=registry)
        first.request(0)
        second = DistributedClustering(two_blobs_graph, 4, registry=registry)
        assert second.request(1).from_cache


class TestProposeCommit:
    def test_propose_does_not_register(self, two_blobs_graph):
        algo = DistributedClustering(two_blobs_graph, 4)
        proposal = algo.propose(0)
        assert algo.registry.assigned_count == 0
        assert 0 in proposal.members()

    def test_commit_registers_all_groups(self, two_blobs_graph):
        algo = DistributedClustering(two_blobs_graph, 4)
        proposal = algo.propose(0)
        result = algo.commit(proposal)
        assert 0 in result.members
        assert algo.registry.assigned >= proposal.members()

    def test_stale_commit_rejected_cleanly(self, small_graph, small_config):
        algo = DistributedClustering(small_graph, small_config.k)
        proposal_a = algo.propose(0)
        # A concurrent request claims overlapping users first.
        overlap_host = next(iter(proposal_a.members() - {0}))
        algo.request(overlap_host)
        before = algo.registry.assigned_count
        with pytest.raises(ClusteringError):
            algo.commit(proposal_a)
        assert algo.registry.assigned_count == before  # nothing half-done

    def test_propose_for_clustered_host_raises(self, two_blobs_graph):
        algo = DistributedClustering(two_blobs_graph, 4)
        algo.request(0)
        with pytest.raises(ClusteringError):
            algo.propose(0)


class TestWorkloadInvariants:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 200), k=st.integers(2, 5))
    def test_property_sequential_requests_consistent(self, seed, k):
        """Serving many hosts keeps every invariant the paper requires.

        Every served cluster: contains its host, has >= k members, is
        registered for all members (reciprocity), and clusters never
        overlap.
        """
        graph = small_world_graph(40, base_degree=4, rewire_probability=0.2, seed=seed)
        algo = DistributedClustering(graph, k)
        for host in range(0, 40, 3):
            try:
                result = algo.request(host)
            except ClusteringError:
                continue
            assert host in result.members
            assert result.size >= k
        algo.registry.check_reciprocity()

    def test_closure_variant_gathers_full_t_component(self, small_graph):
        """With closure=True, the gathered set is closed under t-reach.

        The host's whole t-component (at the proposal's final t) must be
        inside the proposal's claimed membership — nothing t-reachable is
        left outside.
        """
        algo = DistributedClustering(small_graph, 5, closure=True)
        proposal = algo.propose(1)
        gathered = proposal.members()
        host_component = t_component(small_graph, 1, proposal.connectivity)
        assert host_component <= gathered

    def test_no_closure_gathers_less(self, small_graph):
        """The default (paper-practical) variant gathers a smaller set."""
        bare = DistributedClustering(small_graph, 5, closure=False).propose(1)
        closed = DistributedClustering(small_graph, 5, closure=True).propose(1)
        assert len(bare.members()) <= len(closed.members())

    def test_exclusion_of_assigned_users(self, small_graph, small_config):
        """New clusters never recruit already-assigned users."""
        algo = DistributedClustering(small_graph, small_config.k)
        first = algo.request(0)
        fresh_host = next(
            v for v in small_graph.vertices() if v not in algo.registry
        )
        second = algo.request(fresh_host)
        assert not (first.members & second.members)

    def test_connectivity_reported(self, two_blobs_graph):
        algo = DistributedClustering(two_blobs_graph, 4)
        result = algo.request(0)
        # Blob A is internally 2-connected.
        assert result.connectivity == 2.0
