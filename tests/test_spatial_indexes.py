"""Tests for the grid index and k-d tree, cross-validated with brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import uniform_points
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.spatial.grid import GridIndex
from repro.spatial.kdtree import KDTree
from repro.spatial.neighbors import NeighborFinder


@pytest.fixture(scope="module")
def population():
    return list(uniform_points(400, seed=3).points)


@pytest.fixture(scope="module", params=["grid", "kdtree"])
def index(request, population):
    if request.param == "grid":
        return GridIndex(population, cell_size=0.05)
    return KDTree(population)


def brute_radius(points, center, radius):
    r2 = radius * radius
    return {i for i, p in enumerate(points) if center.squared_distance_to(p) <= r2}


def brute_rect(points, rect):
    return {i for i, p in enumerate(points) if rect.contains(p)}


class TestAgainstBruteForce:
    def test_radius_queries(self, index, population):
        rng = np.random.default_rng(1)
        for _ in range(50):
            center = Point(float(rng.random()), float(rng.random()))
            radius = float(rng.uniform(0.005, 0.2))
            assert set(index.query_radius(center, radius)) == brute_radius(
                population, center, radius
            )

    def test_rect_queries(self, index, population):
        rng = np.random.default_rng(2)
        for _ in range(50):
            x1, x2 = sorted(rng.random(2))
            y1, y2 = sorted(rng.random(2))
            rect = Rect(float(x1), float(x2), float(y1), float(y2))
            assert set(index.query_rect(rect)) == brute_rect(population, rect)

    def test_nearest_neighbors(self, index, population):
        rng = np.random.default_rng(3)
        for _ in range(40):
            center = Point(float(rng.random()), float(rng.random()))
            count = int(rng.integers(1, 15))
            got = index.nearest_neighbors(center, count)
            want = sorted(
                range(len(population)),
                key=lambda i: center.squared_distance_to(population[i]),
            )[:count]
            got_d = [center.distance_to(population[i]) for i in got]
            want_d = [center.distance_to(population[i]) for i in want]
            assert got_d == pytest.approx(want_d)

    def test_nearest_with_max_radius(self, index, population):
        center = Point(0.5, 0.5)
        got = index.nearest_neighbors(center, 50, max_radius=0.1)
        assert all(center.distance_to(population[i]) <= 0.1 for i in got)
        assert len(got) == min(50, len(brute_radius(population, center, 0.1)))


class TestEdgeCases:
    def test_zero_count(self, index):
        assert index.nearest_neighbors(Point(0.5, 0.5), 0) == []

    def test_negative_radius_raises(self, index):
        with pytest.raises(ConfigurationError):
            index.query_radius(Point(0.5, 0.5), -0.1)

    def test_count_exceeds_population(self, population, index):
        got = index.nearest_neighbors(Point(0.5, 0.5), len(population) + 10)
        assert len(got) == len(population)

    def test_len(self, index, population):
        assert len(index) == len(population)

    def test_point_accessor(self, index, population):
        assert index.point(7) == population[7]

    def test_grid_rejects_bad_cell_size(self, population):
        with pytest.raises(ConfigurationError):
            GridIndex(population, cell_size=0.0)

    def test_grid_count_rect_matches_query(self, population):
        grid = GridIndex(population, cell_size=0.03)
        rect = Rect(0.2, 0.6, 0.1, 0.5)
        assert grid.count_rect(rect) == len(grid.query_rect(rect))

    def test_points_outside_bounds_are_clamped(self):
        pts = [Point(-0.5, 0.5), Point(1.5, 0.5), Point(0.5, 0.5)]
        grid = GridIndex(pts, cell_size=0.1)
        assert set(grid.query_radius(Point(-0.5, 0.5), 0.01)) == {0}


@settings(max_examples=30, deadline=None)
@given(
    pts=st.lists(
        st.builds(
            Point,
            st.floats(min_value=0, max_value=1, allow_nan=False),
            st.floats(min_value=0, max_value=1, allow_nan=False),
        ),
        min_size=1,
        max_size=60,
    ),
    radius=st.floats(min_value=0.001, max_value=0.8),
)
def test_property_indexes_agree(pts, radius):
    """Grid and k-d tree return identical radius answers on random input."""
    grid = GridIndex(pts, cell_size=0.07)
    tree = KDTree(pts)
    center = Point(0.5, 0.5)
    assert set(grid.query_radius(center, radius)) == set(
        tree.query_radius(center, radius)
    )


class TestNearestNeighborTermination:
    """Regression: expanding-ring search must stop at the radius limit.

    Points in ring r are at least (r - 1) * cell_size from the center, so
    once that lower bound exceeds ``max_radius`` no outer ring can
    contribute — the search used to keep walking rings whenever *any*
    point had ever been collected, turning sparse queries into full-grid
    sweeps.
    """

    @staticmethod
    def _spy_rings(index, monkeypatch):
        rings: list[int] = []
        original = index._ring_cells

        def spy(ccx, ccy, ring):
            rings.append(ring)
            return original(ccx, ccy, ring)

        monkeypatch.setattr(index, "_ring_cells", spy)
        return rings

    def test_sparse_population_stops_at_radius(self, monkeypatch):
        # Three points near the origin, five far away: a 100x100 grid in
        # which the limit (0.05 = 5 cells) is crossed long before the far
        # corner.  count exceeds the in-range population, so only the
        # ring lower bound can end the search.
        near = [Point(0.004 + 0.003 * i, 0.005) for i in range(3)]
        far = [Point(0.9 + 0.01 * i, 0.9) for i in range(5)]
        index = GridIndex(near + far, cell_size=0.01)
        rings = self._spy_rings(index, monkeypatch)
        got = index.nearest_neighbors(Point(0.005, 0.005), 8, max_radius=0.05)
        assert sorted(got) == [0, 1, 2]
        # (ring - 1) * 0.01 > 0.05 first holds at ring 7.
        assert max(rings) <= 7

    def test_whole_population_found_short_circuits(self, monkeypatch):
        # No radius limit and count > population: once every indexed
        # point is collected the remaining rings are provably empty.
        points = [Point(0.5 + 0.001 * i, 0.5) for i in range(3)]
        index = GridIndex(points, cell_size=0.01)
        rings = self._spy_rings(index, monkeypatch)
        got = index.nearest_neighbors(Point(0.5, 0.5), 10)
        assert sorted(got) == [0, 1, 2]
        assert max(rings) <= 1

    def test_tie_at_radius_boundary_included(self):
        # Exact binary arithmetic: distance 0.25 == max_radius 0.25.
        points = [Point(0.25, 0.5), Point(0.25, 0.500001), Point(0.25, 0.26)]
        index = GridIndex(points, cell_size=0.01)
        got = index.nearest_neighbors(Point(0.25, 0.25), 10, max_radius=0.25)
        assert got == [2, 0]  # boundary point in, just-beyond point out

    def test_sparse_matches_brute_force(self):
        rng = np.random.default_rng(11)
        points = [Point(float(x), float(y)) for x, y in rng.random((12, 2))]
        index = GridIndex(points, cell_size=0.01)  # 100x100 grid, 12 points
        for center in [Point(0.1, 0.1), Point(0.5, 0.5), Point(0.95, 0.2)]:
            for radius in [0.05, 0.2, 0.7]:
                got = index.nearest_neighbors(center, 5, max_radius=radius)
                want = sorted(
                    (i for i in brute_radius(points, center, radius)),
                    key=lambda i: (center.squared_distance_to(points[i]), i),
                )[:5]
                assert got == want


class TestNeighborFinder:
    def test_peers_exclude_self(self, population):
        finder = NeighborFinder(population, cell_size=0.1)
        peers = finder.peers_in_range(5, 0.2)
        assert 5 not in peers

    def test_nearest_peers_sorted_and_capped(self, population):
        finder = NeighborFinder(population, cell_size=0.1)
        peers = finder.nearest_peers(5, 4, 0.5)
        assert len(peers) == 4
        center = population[5]
        dists = [center.distance_to(population[p]) for p in peers]
        assert dists == sorted(dists)

    def test_unknown_kind_raises(self, population):
        with pytest.raises(ConfigurationError):
            NeighborFinder(population, kind="rtree")  # type: ignore[arg-type]

    def test_kdtree_backend_matches_grid(self, population):
        grid_f = NeighborFinder(population, kind="grid", cell_size=0.05)
        tree_f = NeighborFinder(population, kind="kdtree")
        assert set(grid_f.peers_in_range(10, 0.15)) == set(
            tree_f.peers_in_range(10, 0.15)
        )
