"""Tests for the Hilbert curve substrate and the hilbASR baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.hilbert_asr import HilbertASRClustering, _buckets_of_k
from repro.datasets import uniform_points
from repro.errors import ClusteringError, ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.spatial.hilbert import hilbert_cell, hilbert_index, point_to_index


class TestHilbertCurve:
    def test_order1_square(self):
        """The order-1 curve visits the four cells in the canonical order."""
        visited = [hilbert_cell(i, order=1) for i in range(4)]
        assert visited == [(0, 0), (0, 1), (1, 1), (1, 0)]

    def test_index_inverts_cell(self):
        for order in (1, 2, 3, 5):
            side = 1 << order
            for index in range(side * side):
                x, y = hilbert_cell(index, order)
                assert hilbert_index(x, y, order) == index

    def test_bijection_order3(self):
        cells = {hilbert_cell(i, order=3) for i in range(64)}
        assert len(cells) == 64

    def test_locality_consecutive_cells_adjacent(self):
        """Consecutive curve positions are 4-neighbour grid cells."""
        for order in (2, 4, 6):
            side = 1 << order
            prev = hilbert_cell(0, order)
            for index in range(1, side * side):
                cur = hilbert_cell(index, order)
                assert abs(cur[0] - prev[0]) + abs(cur[1] - prev[1]) == 1
                prev = cur

    @settings(max_examples=200, deadline=None)
    @given(
        order=st.integers(1, 12),
        data=st.data(),
    )
    def test_property_roundtrip(self, order, data):
        side = 1 << order
        x = data.draw(st.integers(0, side - 1))
        y = data.draw(st.integers(0, side - 1))
        assert hilbert_cell(hilbert_index(x, y, order), order) == (x, y)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            hilbert_index(0, 0, order=0)
        with pytest.raises(ConfigurationError):
            hilbert_index(5, 0, order=1)
        with pytest.raises(ConfigurationError):
            hilbert_cell(-1, order=2)
        with pytest.raises(ConfigurationError):
            hilbert_cell(64, order=3)

    def test_point_to_index_clamps(self):
        assert point_to_index(Point(1.0, 1.0), order=4) == point_to_index(
            Point(0.999, 0.999), order=4
        )
        assert point_to_index(Point(-0.5, 0.0), order=4) == point_to_index(
            Point(0.0, 0.0), order=4
        )

    def test_nearby_points_nearby_indexes(self):
        """Curve locality on real coordinates: a tight pair of points maps
        to closer curve positions than a far pair, overwhelmingly."""
        wins = 0
        for i in range(50):
            base = Point(0.1 + 0.015 * i, 0.3 + 0.01 * i)
            near = Point(base.x + 1e-4, base.y)
            far = Point((base.x + 0.43) % 1.0, (base.y + 0.39) % 1.0)
            d_near = abs(point_to_index(base) - point_to_index(near))
            d_far = abs(point_to_index(base) - point_to_index(far))
            if d_near < d_far:
                wins += 1
        assert wins >= 45


class TestBuckets:
    def test_exact_multiples(self):
        assert _buckets_of_k(list(range(6)), 3) == [[0, 1, 2], [3, 4, 5]]

    def test_leftover_merges_into_last(self):
        buckets = _buckets_of_k(list(range(7)), 3)
        assert buckets == [[0, 1, 2], [3, 4, 5, 6]]

    def test_all_buckets_at_least_k(self):
        for n in range(5, 40):
            for k in range(2, 6):
                buckets = _buckets_of_k(list(range(n)), k)
                assert all(len(b) >= k for b in buckets)
                assert sorted(sum(buckets, [])) == list(range(n))


class TestHilbertASR:
    @pytest.fixture(scope="class")
    def dataset(self):
        return uniform_points(200, seed=23)

    def test_first_request_pays_for_all(self, dataset):
        algo = HilbertASRClustering(dataset, 10)
        result = algo.request(0)
        assert result.involved == 199
        assert result.size >= 10

    def test_later_requests_cached(self, dataset):
        algo = HilbertASRClustering(dataset, 10)
        algo.request(0)
        later = algo.request(57)
        assert later.from_cache
        assert later.involved == 0

    def test_everyone_covered_reciprocally(self, dataset):
        algo = HilbertASRClustering(dataset, 10)
        algo.request(0)
        assert algo.registry.assigned_count == len(dataset)
        algo.registry.check_reciprocity()

    def test_buckets_are_compact(self, dataset):
        """Curve locality: the average bucket box is far smaller than the
        unit square (each of the 20 buckets covers ~1/20 of the users)."""
        algo = HilbertASRClustering(dataset, 10)
        algo.request(0)
        seen = set()
        areas = []
        for user in range(len(dataset)):
            cluster = algo.registry.cluster_of(user)
            if cluster in seen:
                continue
            seen.add(cluster)
            areas.append(Rect.from_points([dataset[i] for i in cluster]).area)
        assert sum(areas) / len(areas) < 0.1

    def test_start_offset_changes_buckets(self, dataset):
        plain = HilbertASRClustering(dataset, 10)
        shifted = HilbertASRClustering(dataset, 10, start_offset=5)
        plain.request(0)
        shifted.request(0)
        assert plain.registry.cluster_of(0) != shifted.registry.cluster_of(0)

    def test_validation(self, dataset):
        with pytest.raises(ConfigurationError):
            HilbertASRClustering(dataset, 0)
        with pytest.raises(ConfigurationError):
            HilbertASRClustering(dataset, 201)
        with pytest.raises(ConfigurationError):
            HilbertASRClustering(dataset, 5, start_offset=-1)
        with pytest.raises(ClusteringError):
            HilbertASRClustering(dataset, 5).request(999)

    def test_harness_integration(self):
        from repro.experiments.harness import ExperimentSetup, run_clustering_workload
        from repro.experiments.workloads import sample_hosts

        setup = ExperimentSetup.paper_default(users=2000, requests=30)
        graph = setup.graph(setup.base_config)
        hosts = sample_hosts(graph, 10, 30, seed=1)
        result = run_clustering_workload(
            setup, "hilbert-asr", setup.base_config, hosts, graph=graph
        )
        assert result.served == 30
        assert result.avg_cloaked_area > 0
