"""Tests for the mobility model and region-lifetime analysis."""

import numpy as np
import pytest

from repro.cloaking.engine import CloakingEngine
from repro.config import SimulationConfig
from repro.datasets import uniform_points
from repro.errors import ConfigurationError, ReproError
from repro.experiments.workloads import sample_hosts
from repro.graph.build import build_wpg
from repro.mobility.lifetime import run_region_lifetime
from repro.mobility.waypoint import RandomWaypointModel


@pytest.fixture()
def walkers():
    return RandomWaypointModel(
        uniform_points(50, seed=19), min_speed=0.02, max_speed=0.06, seed=5
    )


class TestRandomWaypoint:
    def test_step_moves_people(self, walkers):
        before = walkers.snapshot()
        after = walkers.step(1.0)
        moved = sum(1 for a, b in zip(before, after) if a != b)
        assert moved == 50

    def test_positions_stay_in_unit_square(self, walkers):
        for _ in range(30):
            snapshot = walkers.step(1.0)
        assert all(0.0 <= p.x <= 1.0 and 0.0 <= p.y <= 1.0 for p in snapshot)

    def test_displacement_bounded_by_speed(self, walkers):
        before = walkers.snapshot()
        after = walkers.step(2.0)
        for a, b in zip(before, after):
            assert a.distance_to(b) <= 0.06 * 2.0 + 1e-9

    def test_time_advances(self, walkers):
        walkers.step(0.5)
        walkers.step(1.5)
        assert walkers.time == pytest.approx(2.0)

    def test_deterministic_replay(self):
        initial = uniform_points(30, seed=3)
        a = RandomWaypointModel(initial, seed=7)
        b = RandomWaypointModel(initial, seed=7)
        for _ in range(5):
            assert list(a.step(1.0)) == list(b.step(1.0))

    def test_pause_time_freezes_on_arrival(self):
        initial = uniform_points(20, seed=2)
        model = RandomWaypointModel(
            initial, min_speed=5.0, max_speed=5.0, pause_time=100.0, seed=1
        )
        model.step(1.0)  # everyone reaches a waypoint (speed >> diagonal)
        frozen = model.snapshot()
        after = model.step(1.0)  # all paused now
        assert list(frozen) == list(after)

    def test_validation(self):
        initial = uniform_points(5, seed=0)
        with pytest.raises(ConfigurationError):
            RandomWaypointModel(initial, min_speed=0.0)
        with pytest.raises(ConfigurationError):
            RandomWaypointModel(initial, min_speed=0.5, max_speed=0.1)
        with pytest.raises(ConfigurationError):
            RandomWaypointModel(initial, pause_time=-1.0)
        model = RandomWaypointModel(initial)
        with pytest.raises(ConfigurationError):
            model.step(0.0)


class TestRegionLifetime:
    @pytest.fixture(scope="class")
    def result(self):
        dataset = uniform_points(1500, seed=9)
        config = SimulationConfig(
            user_count=1500, delta=0.04, max_peers=8, k=6, request_count=30
        )
        return run_region_lifetime(
            dataset, config, requests=30, steps=6, dt=1.0, max_speed=0.02
        )

    def test_starts_fully_valid(self, result):
        assert result.member_coverage[0] == 1.0
        assert result.regions_fully_valid[0] == 1.0
        assert result.anonymity_preserved[0] == 1.0

    def test_validity_decays_monotonically_in_trend(self, result):
        """Coverage at the end is strictly below the start (people moved)."""
        assert result.member_coverage[-1] < 1.0
        assert result.regions_fully_valid[-1] < 1.0

    def test_full_validity_implies_anonymity(self, result):
        for full, anon in zip(result.regions_fully_valid, result.anonymity_preserved):
            assert anon >= full - 1e-12

    def test_format(self, result):
        text = result.format()
        assert "region lifetime" in text.lower()
        assert "members still covered" in text
        assert "regions invalidated" in text

    def test_stale_regions_invalidated(self, result):
        """Position updates drop stale cached regions from the engine."""
        counts = result.regions_invalidated
        assert len(counts) == len(result.times)
        assert counts[0] == 0
        # Cumulative: monotone non-decreasing.
        assert all(a <= b for a, b in zip(counts, counts[1:]))
        # The fixture's regions demonstrably decay (see the test above),
        # so at least one cached region must have been invalidated.
        assert counts[-1] >= 1

    def test_matches_rebuild_reference(self, result):
        """The apply_moves-driven run reports the rebuild path's numbers.

        Reference implementation: cloak the identical workload at t = 0,
        step the identical waypoint model, and recount every series from
        static snapshots — no churn runtime involved.  Every reported
        series must match exactly.
        """
        dataset = uniform_points(1500, seed=9)
        config = SimulationConfig(
            user_count=1500, delta=0.04, max_peers=8, k=6, request_count=30
        )
        graph = build_wpg(dataset, config.delta, config.max_peers)
        engine = CloakingEngine(dataset, graph, config, policy="optimal")
        hosts = sample_hosts(graph, config.k, 30, seed=37)
        regions = []
        seen = set()
        for host in hosts:
            try:
                res = engine.request(host)
            except ReproError:
                continue
            if res.cluster.members in seen:
                continue
            seen.add(res.cluster.members)
            regions.append((res.region.rect, sorted(res.cluster.members)))
        model = RandomWaypointModel(
            dataset, min_speed=0.002, max_speed=0.02, seed=37
        )
        coverage = [1.0]
        fully_valid = [1.0]
        anonymous = [1.0]
        invalidated = [0]
        stale = set()
        for _ in range(6):
            snapshot = model.step(1.0)
            inside_total = member_total = intact = still_anonymous = 0
            for rect, members in regions:
                inside = sum(1 for m in members if rect.contains(snapshot[m]))
                inside_total += inside
                member_total += len(members)
                if inside == len(members):
                    intact += 1
                else:
                    stale.add(frozenset(members))
                if inside >= config.k:
                    still_anonymous += 1
            coverage.append(inside_total / member_total)
            fully_valid.append(intact / len(regions))
            anonymous.append(still_anonymous / len(regions))
            invalidated.append(len(stale))
        assert result.member_coverage == tuple(coverage)
        assert result.regions_fully_valid == tuple(fully_valid)
        assert result.anonymity_preserved == tuple(anonymous)
        assert result.regions_invalidated == tuple(invalidated)
