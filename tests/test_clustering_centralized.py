"""Tests for centralized t-connectivity k-clustering (Algorithm 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.centralized import (
    centralized_k_clustering,
    greedy_partition,
    strict_partition,
)
from repro.errors import ConfigurationError
from repro.graph.generators import random_weighted_graph, small_world_graph
from repro.graph.wpg import WeightedProximityGraph


class TestHandExamples:
    def test_two_blobs_strict_k4(self, two_blobs_graph):
        partition = strict_partition(two_blobs_graph, 4)
        partition.validate()
        assert sorted(sorted(c) for c in partition.clusters) == [
            [0, 1, 2, 3],
            [4, 5, 6, 7],
        ]

    def test_two_blobs_strict_k5(self, two_blobs_graph):
        """Splitting at the bridge would create two 4-clusters < k: frozen."""
        partition = strict_partition(two_blobs_graph, 5)
        assert partition.clusters == [set(range(8))]

    def test_two_blobs_greedy_k4(self, two_blobs_graph):
        partition = greedy_partition(two_blobs_graph, 4)
        partition.validate()
        assert sorted(sorted(c) for c in partition.clusters) == [
            [0, 1, 2, 3],
            [4, 5, 6, 7],
        ]

    def test_fig6_style_recursion(self):
        """The Fig. 6 narrative: remove heavy bridges, recurse into pieces.

        Two pairs joined at weight 4, joined to another two pairs across
        a weight-8 bridge.  2-clustering must find the four pairs.
        """
        g = WeightedProximityGraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 1.0)
        g.add_edge(1, 2, 4.0)
        g.add_edge(4, 5, 1.0)
        g.add_edge(6, 7, 1.0)
        g.add_edge(5, 6, 4.0)
        g.add_edge(3, 4, 8.0)
        for method in ("strict", "greedy"):
            partition = centralized_k_clustering(g, 2, method=method)
            partition.validate()
            assert sorted(sorted(c) for c in partition.clusters) == [
                [0, 1], [2, 3], [4, 5], [6, 7],
            ]

    def test_invalid_components_reported(self):
        g = WeightedProximityGraph.from_edges([(0, 1, 1.0)], vertices=[2])
        partition = centralized_k_clustering(g, 2, method="greedy")
        assert partition.clusters == [{0, 1}]
        assert partition.invalid == [{2}]

    def test_greedy_splits_where_strict_freezes(self):
        """A straggler blocks strict but not greedy.

        A 5-clique at weight 1 plus a pendant vertex at weight 2, bridged
        (weight 2) to another 4-clique.  With k = 4, strict cannot remove
        the weight-2 class (the pendant would be stranded); greedy skips
        only the pendant's edge and still separates the cliques.
        """
        g = WeightedProximityGraph()
        clique_a = [0, 1, 2, 3, 4]
        for i in clique_a:
            for j in clique_a:
                if i < j:
                    g.add_edge(i, j, 1.0)
        clique_b = [6, 7, 8, 9]
        for i in clique_b:
            for j in clique_b:
                if i < j:
                    g.add_edge(i, j, 1.0)
        g.add_edge(4, 5, 2.0)   # pendant vertex 5
        g.add_edge(0, 6, 2.0)   # bridge between cliques
        strict = strict_partition(g, 4)
        greedy = greedy_partition(g, 4)
        assert strict.clusters == [set(range(10))]
        assert sorted(len(c) for c in greedy.clusters) == [4, 6]

    def test_k_validation(self, two_blobs_graph):
        with pytest.raises(ConfigurationError):
            centralized_k_clustering(two_blobs_graph, 0)

    def test_unknown_method(self, two_blobs_graph):
        with pytest.raises(ConfigurationError):
            centralized_k_clustering(two_blobs_graph, 2, method="magic")  # type: ignore[arg-type]

    def test_vertices_restriction(self, two_blobs_graph):
        partition = centralized_k_clustering(
            two_blobs_graph, 2, vertices=[0, 1, 2, 3]
        )
        assert partition.covered == 4


class TestNaiveVsFast:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 400), k=st.integers(2, 5))
    def test_strict_naive_equals_dendrogram(self, seed, k):
        graph = random_weighted_graph(16, edge_probability=0.25, seed=seed)
        fast = strict_partition(graph, k, naive=False)
        naive = strict_partition(graph, k, naive=True)
        assert sorted(sorted(c) for c in fast.clusters) == sorted(
            sorted(c) for c in naive.clusters
        )
        assert sorted(sorted(c) for c in fast.invalid) == sorted(
            sorted(c) for c in naive.invalid
        )

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 300), k=st.integers(2, 4))
    def test_greedy_naive_equals_fast(self, seed, k):
        graph = small_world_graph(24, base_degree=4, rewire_probability=0.3, seed=seed)
        fast = greedy_partition(graph, k, naive=False)
        naive = greedy_partition(graph, k, naive=True)
        assert sorted(sorted(c) for c in fast.clusters) == sorted(
            sorted(c) for c in naive.clusters
        )


class TestPartitionProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 500),
        k=st.integers(2, 6),
        method=st.sampled_from(["strict", "greedy"]),
    )
    def test_property_valid_partition(self, seed, k, method):
        """Both semantics always return a valid, complete partition."""
        graph = random_weighted_graph(22, edge_probability=0.18, seed=seed)
        partition = centralized_k_clustering(graph, k, method=method)
        partition.validate()
        assert partition.covered == graph.vertex_count

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 300), k=st.integers(2, 4))
    def test_property_greedy_refines_strict(self, seed, k):
        """Every greedy cluster lies inside some strict cluster.

        Greedy accepts every strict split and then keeps going, so its
        partition is a refinement.
        """
        graph = small_world_graph(26, base_degree=4, rewire_probability=0.2, seed=seed)
        strict = strict_partition(graph, k)
        greedy = greedy_partition(graph, k)
        strict_groups = list(strict.all_groups())
        for cluster in greedy.all_groups():
            assert any(cluster <= outer for outer in strict_groups)

    def test_greedy_does_not_mutate_input(self, two_blobs_graph):
        before = sorted((e.key(), e.weight) for e in two_blobs_graph.edges())
        greedy_partition(two_blobs_graph, 4)
        after = sorted((e.key(), e.weight) for e in two_blobs_graph.edges())
        assert before == after
