"""Cross-layer equivalence properties (hypothesis over random worlds).

The strongest correctness evidence in this repository: for arbitrary
random populations, the analytic algorithms and their message-level
executions agree exactly, and both satisfy the paper's invariants.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounding.p2p import p2p_upper_bound
from repro.bounding.policies import ExponentialPolicy, LinearPolicy
from repro.bounding.protocol import progressive_upper_bound
from repro.clustering.distributed import DistributedClustering
from repro.clustering.protocol import P2PClusteringProtocol
from repro.datasets import uniform_points
from repro.errors import ClusteringError
from repro.graph.build import build_wpg
from repro.network.node import populate_network
from repro.network.simulator import PeerNetwork


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 100), k=st.integers(2, 6), host=st.integers(0, 119))
def test_property_wire_equals_analytic_clustering(seed, k, host):
    """For any random world, the wire protocol = the analytic algorithm.

    Same cluster membership, same connectivity, and a fetch count equal
    to the analytic involved-user count.
    """
    dataset = uniform_points(120, seed=seed)
    graph = build_wpg(dataset, delta=0.15, max_peers=6)
    try:
        expected = DistributedClustering(graph, k).request(host)
    except ClusteringError:
        return  # host not clusterable in this world: nothing to compare
    network = PeerNetwork()
    populate_network(network, graph, list(dataset.points))
    report = P2PClusteringProtocol(network, graph, k).request(host)
    assert report.result.members == expected.members
    assert report.result.connectivity == expected.connectivity
    assert report.adjacency_fetches == expected.involved


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 100),
    step=st.floats(min_value=0.01, max_value=0.3),
    exponential=st.booleans(),
)
def test_property_wire_equals_analytic_bounding(seed, step, exponential):
    """Wire-level bounding reaches the same bound as the analytic run."""
    dataset = uniform_points(40, seed=seed)
    graph = build_wpg(dataset, delta=0.5, max_peers=6)
    network = PeerNetwork()
    populate_network(network, graph, list(dataset.points))
    members = list(range(12))
    host = 0
    values = [dataset[m].x for m in members]
    make = (lambda: ExponentialPolicy(step)) if exponential else (
        lambda: LinearPolicy(step)
    )
    analytic = progressive_upper_bound(values, dataset[host].x, make())
    wire = p2p_upper_bound(
        network, host, members, axis=0, sign=1.0,
        start=dataset[host].x, policy=make(),
    )
    assert wire.outcome.bound == pytest.approx(analytic.bound)
    assert wire.outcome.iterations == analytic.iterations


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 60), k=st.integers(2, 5))
def test_property_workload_invariants_random_worlds(seed, k):
    """Across a whole random workload: reciprocity, coverage, anonymity."""
    dataset = uniform_points(150, seed=seed)
    graph = build_wpg(dataset, delta=0.12, max_peers=6)
    algo = DistributedClustering(graph, k)
    served_members: set[int] = set()
    for host in range(0, 150, 4):
        try:
            result = algo.request(host)
        except ClusteringError:
            continue
        assert host in result.members
        assert result.size >= k
        if not result.from_cache:
            # Fresh clusters never overlap previously served users.
            assert not (result.members & served_members) or (
                result.members <= served_members
            )
        served_members |= result.members
    algo.registry.check_reciprocity()
