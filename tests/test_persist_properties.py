"""Round-trip identity properties for every persisted structure.

Hypothesis drives the export/import pairs the snapshot subsystem is
built from — :meth:`GridIndex.export_arrays` / ``from_export``,
:meth:`ClusterTree.to_state` / ``from_state``, and
:func:`graph_to_arrays` / :func:`graph_from_arrays` — over randomly
generated worlds (:func:`repro.verify.worlds.world_strategy`), random
mutation sequences (so id holes from removals and post-churn states are
covered), and sparse non-dense vertex-id graphs.  Every round trip must
be an identity, bit for bit: same queries, same signatures, same float
weights.
"""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro.datasets.base import PointDataset
from repro.errors import ConfigurationError, GraphError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.graph import graph_from_arrays, graph_to_arrays
from repro.graph.build import build_wpg_fast
from repro.graph.cluster_tree import ClusterTree
from repro.graph.incremental import IncrementalWPG
from repro.spatial.grid import GridIndex
from repro.verify.invariants import graph_equality_details
from repro.verify.worlds import build_world, churn_schedule, world_strategy

import pytest

coordinate = st.floats(0.0, 1.0, allow_nan=False, width=32)
coordinate_pair = st.tuples(coordinate, coordinate)


def _grids_equal(grid: GridIndex, clone: GridIndex) -> None:
    assert clone.live_count == grid.live_count
    assert sorted(clone.live_ids()) == sorted(grid.live_ids())
    probe = Rect(0.1, 0.9, 0.1, 0.9)
    assert sorted(clone.query_rect(probe)) == sorted(grid.query_rect(probe))
    for pid in grid.live_ids():
        assert clone.point(pid) == grid.point(pid)
        assert clone.query_radius(grid.point(pid), 0.2) == grid.query_radius(
            grid.point(pid), 0.2
        )


class TestGridRoundTrip:
    @given(st.data())
    def test_mutated_grid_round_trips(self, data):
        initial = data.draw(
            st.lists(coordinate_pair, min_size=2, max_size=14), label="initial"
        )
        cell = data.draw(st.sampled_from([0.09, 0.17, 0.33]), label="cell")
        grid = GridIndex([Point(x, y) for x, y in initial], cell_size=cell)
        for _ in range(data.draw(st.integers(0, 12), label="ops")):
            live = sorted(grid.live_ids())
            op = data.draw(
                st.sampled_from(
                    ["insert", "move", "move"]
                    + (["remove"] if len(live) > 1 else [])
                ),
                label="op",
            )
            if op == "insert":
                x, y = data.draw(coordinate_pair, label="at")
                grid.insert(Point(x, y))
            elif op == "remove":
                grid.remove(data.draw(st.sampled_from(live), label="rm"))
            else:
                x, y = data.draw(coordinate_pair, label="to")
                grid.move(data.draw(st.sampled_from(live), label="mv"), Point(x, y))

        clone = GridIndex.from_export(grid.export_arrays(), cell_size=cell)
        _grids_equal(grid, clone)
        # The clone keeps working: it is a live index, not a read replica.
        new_id = clone.insert(Point(0.5, 0.5))
        assert new_id == grid.insert(Point(0.5, 0.5))
        _grids_equal(grid, clone)

    def test_shape_mismatch_rejected(self):
        grid = GridIndex([Point(0.1, 0.2), Point(0.3, 0.4)], cell_size=0.2)
        arrays = grid.export_arrays()
        arrays["live"] = arrays["live"][:1]
        with pytest.raises(ConfigurationError):
            GridIndex.from_export(arrays, cell_size=0.2)


class TestClusterTreeRoundTrip:
    @settings(deadline=None, max_examples=40)
    @given(world_strategy(max_users=30))
    def test_world_tree_round_trips(self, world):
        built = build_world(world)
        graph = built.graph.copy()
        tree = ClusterTree(graph)
        state = tree.to_state()
        clone = ClusterTree.from_state(graph, state)
        assert sorted(clone.node_signatures()) == sorted(
            tree.node_signatures()
        )
        assert clone.to_state() == state

    @settings(deadline=None, max_examples=20)
    @given(world_strategy(max_users=30))
    def test_post_churn_tree_round_trips(self, world):
        # The churn runtime only adopts graphs from stateless radios.
        assume(world.radio == "ideal")
        built = build_world(world)
        graph = built.graph.copy()
        tree = ClusterTree(graph)
        grid = GridIndex(list(built.dataset), cell_size=world.delta)
        runtime = IncrementalWPG(
            grid, delta=world.delta, max_peers=world.max_peers, graph=graph
        )
        # built.world has n normalised to the realised dataset size.
        for batch in churn_schedule(built.world):
            tree.apply_patch(runtime.apply_moves(batch))
        state = tree.to_state()
        clone = ClusterTree.from_state(graph, state)
        assert sorted(clone.node_signatures()) == sorted(
            tree.node_signatures()
        )
        assert clone.to_state() == state

    def test_malformed_state_rejected(self):
        graph = build_wpg_fast(
            PointDataset([Point(0.1, 0.1), Point(0.12, 0.1), Point(0.5, 0.5)]),
            0.1,
            4,
        )
        tree = ClusterTree(graph)
        state = tree.to_state()
        bad = dict(state)
        bad["node_indptr"] = state["node_indptr"][:-1]
        with pytest.raises(GraphError):
            ClusterTree.from_state(graph, bad)


class TestGraphArraysRoundTrip:
    @settings(deadline=None, max_examples=40)
    @given(world_strategy(max_users=30))
    def test_world_graph_round_trips(self, world):
        built = build_world(world)
        arrays = graph_to_arrays(built.graph)
        clone = graph_from_arrays(arrays)
        details = graph_equality_details(clone, built.graph, "clone", "graph")
        assert not details, details

    @given(
        st.lists(
            st.tuples(st.integers(0, 40), st.integers(0, 40)),
            max_size=30,
        ),
        st.lists(st.integers(0, 60), min_size=1, max_size=8),
    )
    def test_sparse_vertex_ids_round_trip(self, pairs, extra_vertices):
        """Non-dense ids (holes from departures) take the from_edges path."""
        from repro.graph.wpg import WeightedProximityGraph

        edges = {}
        for u, v in pairs:
            if u != v:
                # Weights that exercise float bit-exactness.
                edges[(min(u, v), max(u, v))] = (u + 0.1) * (v + 0.7) / 9.0
        graph = WeightedProximityGraph.from_edges(
            [(u, v, w) for (u, v), w in edges.items()],
            vertices=extra_vertices,
        )
        clone = graph_from_arrays(graph_to_arrays(graph))
        details = graph_equality_details(clone, graph, "clone", "graph")
        assert not details, details

    def test_mismatched_columns_rejected(self):
        import numpy as np

        with pytest.raises(GraphError):
            graph_from_arrays(
                {
                    "vertices": np.array([0, 1, 2]),
                    "us": np.array([0]),
                    "vs": np.array([1, 2]),
                    "ws": np.array([0.5]),
                }
            )
