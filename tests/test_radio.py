"""Tests for the RSS/TDOA models and the ranking measurement layer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datasets.base import PointDataset
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.radio.measurement import ProximityMeter
from repro.radio.rss import IdealRSSModel, LogDistanceRSSModel
from repro.radio.tdoa import TDOAModel

distances = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)


class TestIdealRSS:
    @given(distances, distances)
    def test_strictly_decreasing(self, a, b):
        model = IdealRSSModel()
        if a + 1e-9 < b:  # resolvable separation in float arithmetic
            assert model.rss(a) > model.rss(b)

    def test_negative_distance_raises(self):
        with pytest.raises(ConfigurationError):
            IdealRSSModel().rss(-0.1)

    def test_bad_epsilon_raises(self):
        with pytest.raises(ConfigurationError):
            IdealRSSModel(epsilon=0.0)


class TestLogDistanceRSS:
    def test_noiseless_is_decreasing(self):
        model = LogDistanceRSSModel(shadowing_sigma_db=0.0)
        readings = [model.rss(d) for d in (1e-4, 1e-3, 1e-2, 1e-1)]
        assert readings == sorted(readings, reverse=True)

    def test_below_reference_distance_clamps(self):
        model = LogDistanceRSSModel(reference_distance=1e-3)
        assert model.rss(1e-6) == model.rss(1e-3)

    def test_shadowing_perturbs(self):
        noisy = LogDistanceRSSModel(shadowing_sigma_db=4.0, seed=1)
        clean = LogDistanceRSSModel(shadowing_sigma_db=0.0)
        assert noisy.rss(0.01) != clean.rss(0.01)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            LogDistanceRSSModel(path_loss_exponent=0.0)
        with pytest.raises(ConfigurationError):
            LogDistanceRSSModel(reference_distance=0.0)
        with pytest.raises(ConfigurationError):
            LogDistanceRSSModel(shadowing_sigma_db=-1.0)


class TestTDOA:
    def test_arrival_time_increases_with_distance(self):
        model = TDOAModel()
        assert model.arrival_time(0.1) < model.arrival_time(0.2)

    def test_rss_adapter_larger_means_closer(self):
        model = TDOAModel()
        assert model.rss(0.1) > model.rss(0.2)

    def test_jitter_never_negative_time(self):
        model = TDOAModel(jitter_sigma=1.0, seed=0)
        assert all(model.arrival_time(1e-6) >= 0.0 for _ in range(50))

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            TDOAModel(propagation_speed=0.0)
        with pytest.raises(ConfigurationError):
            TDOAModel(jitter_sigma=-1.0)


class TestProximityMeter:
    @pytest.fixture()
    def line_dataset(self):
        # Users on a line: 0 at origin, then increasingly far.
        return PointDataset(
            [Point(0.0, 0.5), Point(0.1, 0.5), Point(0.25, 0.5), Point(0.6, 0.5)]
        )

    def test_rank_peers_matches_distance_order(self, line_dataset):
        meter = ProximityMeter(line_dataset)
        assert meter.rank_peers(0, [3, 1, 2]) == [1, 2, 3]

    def test_ranks_one_based(self, line_dataset):
        meter = ProximityMeter(line_dataset)
        ranks = meter.ranks(0, [3, 1, 2])
        assert ranks == {1: 1, 2: 2, 3: 3}

    def test_self_measurement_raises(self, line_dataset):
        with pytest.raises(ConfigurationError):
            ProximityMeter(line_dataset).reading(1, 1)

    def test_tie_broken_by_id(self):
        ds = PointDataset(
            [Point(0.5, 0.5), Point(0.4, 0.5), Point(0.6, 0.5)]
        )  # 1 and 2 equidistant from 0
        meter = ProximityMeter(ds)
        assert meter.rank_peers(0, [2, 1]) == [1, 2]

    def test_tdoa_meter_gives_same_ranking(self, line_dataset):
        ideal = ProximityMeter(line_dataset)
        tdoa = ProximityMeter(line_dataset, model=TDOAModel())
        assert ideal.rank_peers(0, [1, 2, 3]) == tdoa.rank_peers(0, [1, 2, 3])
