"""World generation: validation, serialisation, purity, realisation."""

from __future__ import annotations

import math
from dataclasses import replace

import pytest
from hypothesis import given, settings

from repro.errors import VerificationError
from repro.radio.measurement import ProximityMeter
from repro.verify.worlds import (
    DATASET_KINDS,
    MODES,
    POLICIES,
    PROGRESSIVE_POLICIES,
    RADIO_MODELS,
    World,
    build_world,
    random_world,
    world_strategy,
)


class TestWorldValidation:
    def test_defaults_are_valid(self):
        world = World(seed=0)
        assert not world.faulty and not world.p2p

    @pytest.mark.parametrize(
        "field,value",
        [
            ("kind", "hexgrid"),
            ("radio", "lidar"),
            ("policy", "quadratic"),
            ("mode", "serverless"),
            ("drop_probability", 1.0),
            ("drop_probability", -0.1),
            ("k", 0),
            ("k", 999),
        ],
    )
    def test_bad_fields_raise(self, field, value):
        with pytest.raises(VerificationError):
            World(seed=0, **{field: value})

    def test_p2p_requires_distributed_progressive(self):
        with pytest.raises(VerificationError):
            World(seed=0, p2p=True, mode="centralized")
        with pytest.raises(VerificationError):
            World(seed=0, p2p=True, policy="optimal")
        World(seed=0, p2p=True, mode="distributed", policy="secure")

    def test_fault_world_constraints(self):
        with pytest.raises(VerificationError):
            World(seed=0, drop_probability=0.1, policy="optimal")
        world = World(seed=0, crashed=(3,), policy="linear")
        assert world.faulty

    def test_faulty_property(self):
        assert not World(seed=0).faulty
        assert World(seed=0, drop_probability=0.05).faulty
        assert World(seed=0, crashed=(1, 2)).faulty


class TestWorldSerialisation:
    def test_roundtrip(self):
        world = World(
            seed=9,
            kind="gaussian",
            n=30,
            k=4,
            policy="exponential",
            drop_probability=0.1,
            crashed=(5, 11),
        )
        payload = world.to_dict()
        assert payload["crashed"] == [5, 11]  # JSON-friendly list
        assert World.from_dict(payload) == world

    def test_from_dict_validates(self):
        payload = World(seed=0).to_dict()
        payload["policy"] = "bogus"
        with pytest.raises(VerificationError):
            World.from_dict(payload)


class TestRandomWorld:
    def test_pure_function_of_seed(self):
        for seed in range(25):
            assert random_world(seed) == random_world(seed)

    def test_draws_are_valid_and_in_range(self):
        for seed in range(60):
            world = random_world(seed)
            assert world.kind in DATASET_KINDS
            assert world.radio in RADIO_MODELS
            assert world.policy in POLICIES
            assert world.mode in MODES
            assert 2 <= world.k <= min(8, world.n)
            assert 0.0 <= world.drop_probability < 1.0
            if world.p2p or world.faulty:
                assert world.mode == "distributed"
                assert world.policy in PROGRESSIVE_POLICIES

    def test_covers_fault_and_p2p_flavors(self):
        worlds = [random_world(seed) for seed in range(60)]
        assert any(w.p2p for w in worlds)
        assert any(w.faulty for w in worlds)
        assert any(not w.p2p and not w.faulty for w in worlds)


class TestBuildWorld:
    def test_grid_rounds_to_a_square(self):
        built = build_world(World(seed=3, kind="grid", n=99, k=4))
        side = math.isqrt(99)
        assert built.world.n == side * side
        assert len(built.dataset) == side * side
        assert built.config.user_count == side * side

    def test_hosts_are_distinct_and_in_range(self):
        world = World(seed=5, n=40, requests=6)
        built = build_world(world)
        assert len(built.hosts) == 6
        assert len(set(built.hosts)) == 6
        assert all(0 <= h < 40 for h in built.hosts)

    def test_fast_and_scalar_graphs_built_identically(self):
        built = build_world(World(seed=7, n=50, radio="shadowing"))
        fast = {e.key(): e.weight for e in built.graph.edges()}
        scalar = {e.key(): e.weight for e in built.scalar_graph.edges()}
        assert fast == scalar

    def test_meter_matches_radio_model(self):
        assert build_world(World(seed=1)).meter() is None
        noisy = build_world(World(seed=1, radio="tdoa", n=24))
        assert isinstance(noisy.meter(), ProximityMeter)

    def test_build_is_deterministic(self):
        world = random_world(11)
        a, b = build_world(world), build_world(world)
        assert a.hosts == b.hosts
        assert {e.key(): e.weight for e in a.graph.edges()} == {
            e.key(): e.weight for e in b.graph.edges()
        }

    def test_unknown_radio_rejected_before_build(self):
        world = build_world(World(seed=0, n=24)).world
        with pytest.raises(VerificationError):
            replace(world, radio="sonar")


class TestWorldStrategy:
    @settings(max_examples=20)
    @given(world_strategy(max_users=24))
    def test_generated_worlds_are_valid(self, world):
        # World.__post_init__ is the validator; surviving construction and
        # passing the generator's own promises is the property.
        assert 12 <= world.n <= 24
        assert 2 <= world.k <= 6
        assert not world.faulty  # faults are opt-in

    @settings(max_examples=20)
    @given(world_strategy(max_users=20, allow_faults=True))
    def test_fault_opt_in_worlds_stay_consistent(self, world):
        if world.faulty:
            assert world.mode == "distributed"
            assert world.policy in PROGRESSIVE_POLICIES
