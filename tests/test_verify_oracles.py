"""The exact oracles, hand-checked — plus the cross-validation sweep.

The oracles in :mod:`repro.verify.oracles` are the ground truth the fuzz
harness trusts, so they get the strictest treatment of all: every oracle
is checked on graphs small enough to verify by hand, and the acceptance
sweep cross-validates the optimized clustering and bounding code against
them on hundreds of random small instances (exact regime: n <= 12).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounding.boxing import optimal_bounding_box, secure_bounding_box
from repro.bounding.policies import LinearPolicy
from repro.clustering.isolation import (
    isolation_counterexample,
    smallest_valid_cluster_rule,
)
from repro.datasets.base import PointDataset
from repro.errors import VerificationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.graph.build import build_wpg
from repro.graph.wpg import WeightedProximityGraph
from repro.verify.oracles import (
    ORACLE_MAX_VERTICES,
    bottleneck_connectivity,
    oracle_bounding_box,
    oracle_isolation_violations,
    oracle_min_mew_clusters,
    oracle_smallest_cluster,
)


class TestOracleBoundingBox:
    def test_matches_direct_minmax(self):
        points = [Point(0.2, 0.8), Point(0.5, 0.1), Point(0.9, 0.4)]
        assert oracle_bounding_box(points) == Rect(0.2, 0.9, 0.1, 0.8)

    def test_single_point_degenerate(self):
        box = oracle_bounding_box([Point(0.3, 0.7)])
        assert box == Rect(0.3, 0.3, 0.7, 0.7)
        assert box.area == 0.0

    def test_empty_raises(self):
        with pytest.raises(VerificationError):
            oracle_bounding_box([])


class TestOracleSmallestCluster:
    def test_chain_endpoints(self, chain_graph):
        # Vertex 8's only edge has weight 1: its 2-cluster is {7, 8} at t=1.
        assert oracle_smallest_cluster(chain_graph, 8, 2) == (
            frozenset({7, 8}),
            1.0,
        )
        # Vertex 0's only edge has weight 8: everything joins at once.
        cluster, t = oracle_smallest_cluster(chain_graph, 0, 2)
        assert cluster == frozenset(range(9))
        assert t == 8.0

    def test_two_blobs(self, two_blobs_graph):
        cluster, t = oracle_smallest_cluster(two_blobs_graph, 0, 4)
        assert cluster == frozenset({0, 1, 2, 3})
        assert t == 2.0
        # k above the blob size must cross the weight-9 bridge.
        cluster, t = oracle_smallest_cluster(two_blobs_graph, 0, 5)
        assert cluster == frozenset(range(8))
        assert t == 9.0

    def test_k_of_one_is_the_host_alone(self, two_blobs_graph):
        assert oracle_smallest_cluster(two_blobs_graph, 5, 1) == (
            frozenset({5}),
            0.0,
        )

    def test_unreachable_k_returns_none(self, two_blobs_graph):
        assert oracle_smallest_cluster(two_blobs_graph, 0, 9) is None

    def test_exclusion_changes_the_answer(self, two_blobs_graph):
        # Without 1 and 2, vertex 0 only reaches size 3 over the bridge.
        cluster, t = oracle_smallest_cluster(
            two_blobs_graph, 0, 3, exclude=frozenset({1, 2})
        )
        assert cluster == frozenset({0, 3, 4, 5, 6, 7})
        assert t == 9.0

    def test_excluded_host_raises(self, two_blobs_graph):
        with pytest.raises(VerificationError):
            oracle_smallest_cluster(two_blobs_graph, 0, 2, exclude=frozenset({0}))

    def test_unknown_host_raises(self, two_blobs_graph):
        with pytest.raises(VerificationError):
            oracle_smallest_cluster(two_blobs_graph, 99, 2)


class TestBottleneckConnectivity:
    def test_blob_connects_at_its_heaviest_needed_edge(self, two_blobs_graph):
        assert bottleneck_connectivity(two_blobs_graph, {0, 1, 2, 3}) == 2.0
        assert bottleneck_connectivity(two_blobs_graph, {0, 1, 2}) == 1.0

    def test_cross_blob_subset_needs_the_bridge(self, two_blobs_graph):
        assert bottleneck_connectivity(two_blobs_graph, {3, 4}) == 9.0

    def test_singleton_is_zero(self, two_blobs_graph):
        assert bottleneck_connectivity(two_blobs_graph, {6}) == 0.0

    def test_disconnected_subset_is_none(self, two_blobs_graph):
        # 0 and 7 have no induced edge: paths through other vertices
        # don't count for a standalone cluster.
        assert bottleneck_connectivity(two_blobs_graph, {0, 7}) is None

    def test_empty_subset_raises(self, two_blobs_graph):
        with pytest.raises(VerificationError):
            bottleneck_connectivity(two_blobs_graph, set())


class TestOracleMinMew:
    def test_two_blobs_minimum(self, two_blobs_graph):
        t, minimizers = oracle_min_mew_clusters(two_blobs_graph, 0, 4)
        assert t == 2.0
        assert frozenset({0, 1, 2, 3}) in minimizers
        # Every minimizer stays inside blob A (crossing costs 9).
        assert all(subset <= frozenset({0, 1, 2, 3}) for subset in minimizers)

    def test_component_below_k_is_none(self, two_blobs_graph):
        assert oracle_min_mew_clusters(two_blobs_graph, 0, 9) is None

    def test_oversized_component_raises(self):
        graph = WeightedProximityGraph()
        for i in range(ORACLE_MAX_VERTICES + 1):
            graph.add_edge(i, i + 1, 1.0)
        with pytest.raises(VerificationError):
            oracle_min_mew_clusters(graph, 0, 2)

    def test_invalid_k_raises(self, two_blobs_graph):
        with pytest.raises(VerificationError):
            oracle_min_mew_clusters(two_blobs_graph, 0, 0)


class TestOracleIsolation:
    def test_blob_is_isolated(self, two_blobs_graph):
        assert oracle_isolation_violations(two_blobs_graph, {0, 1, 2, 3}, 4) == []

    def test_partial_blob_breaks_neighbors(self, two_blobs_graph):
        # Removing {2, 3} strands 0 and 1 in a 2-component: their valid
        # 4-cluster becomes impossible (the Fig. 5 failure mode).
        violations = oracle_isolation_violations(two_blobs_graph, {2, 3}, 4)
        assert violations == [0, 1]


def _random_instance(seed: int):
    """One random small world in the oracles' exact regime (n <= 12)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, ORACLE_MAX_VERTICES + 1))
    coords = rng.random((n, 2))
    dataset = PointDataset([Point(float(x), float(y)) for x, y in coords])
    delta = float(rng.uniform(0.2, 0.8))
    max_peers = int(rng.integers(2, 8))
    graph = build_wpg(dataset, delta, max_peers)
    k = int(rng.integers(2, n + 1))
    host = int(rng.integers(0, n))
    return dataset, graph, k, host


class TestOracleCrossValidation:
    """The acceptance sweep: optimized code vs oracles, zero mismatches."""

    INSTANCES = 220

    def test_clustering_matches_oracles(self):
        mismatches = []
        for seed in range(self.INSTANCES):
            _dataset, graph, k, host = _random_instance(seed)
            rule = smallest_valid_cluster_rule(graph, host, k)
            scan = oracle_smallest_cluster(graph, host, k)
            scan_set = None if scan is None else set(scan[0])
            if rule != scan_set:
                mismatches.append((seed, "rule-vs-scan", rule, scan_set))
                continue
            exact = oracle_min_mew_clusters(graph, host, k)
            if (exact is None) != (scan is None):
                mismatches.append((seed, "exhaustive-vs-scan-existence"))
                continue
            if exact is None or scan is None:
                continue
            t_exact, minimizers = exact
            cluster, t_scan = scan
            if t_exact != t_scan:
                mismatches.append((seed, "min-mew-t", t_exact, t_scan))
            if not all(subset <= cluster for subset in minimizers):
                mismatches.append((seed, "minimizer-escape"))
        assert mismatches == []

    def test_bounding_matches_oracles(self):
        mismatches = []
        for seed in range(self.INSTANCES):
            dataset, graph, k, host = _random_instance(seed)
            scan = oracle_smallest_cluster(graph, host, k)
            if scan is None:
                continue
            members = sorted(scan[0])
            points = [dataset[m] for m in members]
            oracle = oracle_bounding_box(points)
            if optimal_bounding_box(points) != oracle:
                mismatches.append((seed, "optimal-box"))
            progressive = secure_bounding_box(
                points, members.index(host), lambda: LinearPolicy(0.05)
            )
            if not progressive.region.contains_rect(oracle):
                mismatches.append((seed, "progressive-undershoot"))
        assert mismatches == []

    def test_isolation_checker_matches_oracle(self):
        mismatches = []
        for seed in range(self.INSTANCES // 4):
            _dataset, graph, k, host = _random_instance(seed)
            scan = oracle_smallest_cluster(graph, host, k)
            if scan is None:
                continue
            cluster = set(scan[0])
            witness = isolation_counterexample(graph, cluster, k)
            oracle = oracle_isolation_violations(graph, cluster, k)
            if (witness is None) != (not oracle):
                mismatches.append((seed, witness, oracle))
        assert mismatches == []
