"""The perf-regression sentinel: history, tolerance bands, the gate."""

from __future__ import annotations

import json

import pytest

from repro.obs.sentinel import (
    DEFAULT_TOLERANCE,
    baseline_of,
    check,
    extract_metrics,
    history_path,
    load_history,
    main as sentinel_main,
)


def _wpg_doc(rps: float = 200.0, fast_seconds: float = 0.2) -> dict:
    return {
        "schema": "bench_wpg/v3",
        "sizes": [
            {
                "users": 1000,
                "build": {
                    "scalar_seconds": 1.0,
                    "fast_seconds": fast_seconds,
                    "speedup": 1.0 / fast_seconds,
                    "graphs_equal": True,
                },
                "requests": {
                    "count": 100,
                    "seconds": 0.5,
                    "requests_per_second": rps,
                    "cache_hit_rate": 0.4,
                },
                "clustering": {
                    "speedup": 3.0,
                    "tree": {"requests_per_second": 900.0},
                },
            }
        ],
    }


def _churn_doc(p95: float = 4.0) -> dict:
    return {
        "schema": "bench_churn/v2",
        "maintenance_speedup": 12.0,
        "incremental": {
            "moves_per_second": 5000.0,
            "request_latency_ms": {"p50": 1.0, "p95": p95, "p99": 9.0},
        },
        "tree": {"request_speedup": 2.5},
    }


def _write(tmp_path, name: str, doc: dict) -> str:
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


class TestExtraction:
    def test_wpg_reads_largest_size(self, tmp_path):
        doc = _wpg_doc()
        doc["sizes"].insert(
            0, {**doc["sizes"][0], "users": 10}
        )  # a smaller leading entry must be ignored
        schema, metrics = extract_metrics(doc)
        assert schema == "bench_wpg/v3"
        assert metrics["requests.requests_per_second"] == 200.0
        assert metrics["build.fast_seconds"] == 0.2

    def test_churn_reads_document_root(self):
        schema, metrics = extract_metrics(_churn_doc())
        assert schema == "bench_churn/v2"
        assert metrics["incremental.request_latency_ms.p95"] == 4.0
        assert metrics["maintenance_speedup"] == 12.0

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="unsupported"):
            extract_metrics({"schema": "bench_nope/v1"})

    def test_missing_metric_is_skipped_not_fatal(self):
        doc = _churn_doc()
        del doc["tree"]
        _schema, metrics = extract_metrics(doc)
        assert "tree.request_speedup" not in metrics
        assert "maintenance_speedup" in metrics


class TestGate:
    def test_first_run_seeds_and_passes(self, tmp_path, capsys):
        bench = _write(tmp_path, "w.json", _wpg_doc())
        hist = tmp_path / "hist"
        assert sentinel_main([bench, "--history", str(hist)]) == 0
        assert "seeded history" in capsys.readouterr().out
        store = history_path(hist, "bench_wpg/v3")
        assert len(load_history(store, 10)) == 1

    def test_unchanged_second_run_passes_and_records(self, tmp_path, capsys):
        bench = _write(tmp_path, "w.json", _wpg_doc())
        hist = tmp_path / "hist"
        assert sentinel_main([bench, "--history", str(hist)]) == 0
        assert sentinel_main([bench, "--history", str(hist)]) == 0
        out = capsys.readouterr().out
        assert "PASS (run recorded)" in out
        store = history_path(hist, "bench_wpg/v3")
        assert len(load_history(store, 10)) == 2

    def test_throughput_regression_trips_the_gate(self, tmp_path, capsys):
        good = _write(tmp_path, "w.json", _wpg_doc(rps=200.0))
        bad = _write(tmp_path, "w_bad.json", _wpg_doc(rps=90.0))
        hist = tmp_path / "hist"
        sentinel_main([good, "--history", str(hist)])
        assert sentinel_main([bad, "--history", str(hist)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "requests.requests_per_second" in out
        assert "run NOT recorded" in out
        # The regressed run must not poison the baseline.
        store = history_path(hist, "bench_wpg/v3")
        assert len(load_history(store, 10)) == 1

    def test_latency_regression_trips_the_gate(self, tmp_path, capsys):
        good = _write(tmp_path, "c.json", _churn_doc(p95=4.0))
        bad = _write(tmp_path, "c_bad.json", _churn_doc(p95=8.0))
        hist = tmp_path / "hist"
        sentinel_main([good, "--history", str(hist)])
        assert sentinel_main([bad, "--history", str(hist)]) == 1
        assert "incremental.request_latency_ms.p95" in capsys.readouterr().out

    def test_improvement_within_semantics_passes(self, tmp_path, capsys):
        good = _write(tmp_path, "c.json", _churn_doc(p95=4.0))
        better = _write(tmp_path, "c2.json", _churn_doc(p95=1.0))
        hist = tmp_path / "hist"
        sentinel_main([good, "--history", str(hist)])
        assert sentinel_main([better, "--history", str(hist)]) == 0
        assert "improved" in capsys.readouterr().out

    def test_tolerance_flag_widens_the_band(self, tmp_path):
        good = _write(tmp_path, "w.json", _wpg_doc(rps=200.0))
        slower = _write(tmp_path, "w2.json", _wpg_doc(rps=120.0))
        hist = tmp_path / "hist"
        sentinel_main([good, "--history", str(hist)])
        # -40% trips the default ±30% band but not a ±50% one.
        assert sentinel_main([slower, "--history", str(hist), "--check-only"]) == 1
        assert (
            sentinel_main(
                [slower, "--history", str(hist), "--tolerance", "0.5"]
            )
            == 0
        )

    def test_check_only_never_writes(self, tmp_path):
        bench = _write(tmp_path, "w.json", _wpg_doc())
        hist = tmp_path / "hist"
        sentinel_main([bench, "--history", str(hist)])
        sentinel_main([bench, "--history", str(hist), "--check-only"])
        store = history_path(hist, "bench_wpg/v3")
        assert len(load_history(store, 10)) == 1

    def test_record_only_skips_the_gate(self, tmp_path):
        good = _write(tmp_path, "w.json", _wpg_doc(rps=200.0))
        bad = _write(tmp_path, "w_bad.json", _wpg_doc(rps=1.0))
        hist = tmp_path / "hist"
        sentinel_main([good, "--history", str(hist)])
        assert (
            sentinel_main([bad, "--history", str(hist), "--record-only"]) == 0
        )
        store = history_path(hist, "bench_wpg/v3")
        assert len(load_history(store, 10)) == 2

    def test_bad_file_is_exit_2(self, tmp_path, capsys):
        missing = str(tmp_path / "absent.json")
        assert sentinel_main([missing, "--history", str(tmp_path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestBaseline:
    def test_median_window_resists_one_anomaly(self, tmp_path):
        bench = _write(tmp_path, "w.json", _wpg_doc(rps=200.0))
        spike = _write(tmp_path, "w_spike.json", _wpg_doc(rps=1000.0))
        hist = tmp_path / "hist"
        for source in (bench, bench, spike):
            sentinel_main([source, "--history", str(hist), "--record-only"])
        store = history_path(hist, "bench_wpg/v3")
        history = load_history(store, 5)
        assert (
            baseline_of(history, "requests.requests_per_second") == 200.0
        )
        # 200 rps is well within tolerance of the median-200 baseline even
        # though the mean was dragged to 466 by the spike.
        verdicts = check(
            "bench_wpg/v3",
            {"requests.requests_per_second": 200.0},
            history,
            DEFAULT_TOLERANCE,
        )
        by_name = {v.name: v for v in verdicts}
        assert not by_name["requests.requests_per_second"].regressed

    def test_window_limits_the_lookback(self, tmp_path):
        hist = tmp_path / "hist"
        old = _write(tmp_path, "w_old.json", _wpg_doc(rps=1000.0))
        sentinel_main([old, "--history", str(hist), "--record-only"])
        recent = _write(tmp_path, "w.json", _wpg_doc(rps=100.0))
        for _ in range(3):
            sentinel_main([recent, "--history", str(hist), "--record-only"])
        store = history_path(hist, "bench_wpg/v3")
        windowed = load_history(store, 3)
        assert baseline_of(windowed, "requests.requests_per_second") == 100.0
