"""Property suite for the online tuning layer (:mod:`repro.tuning`).

Hypothesis drives three families over :func:`world_strategy` worlds:

* a default (all-off) :class:`TuningPolicy` is *bit*-identical to no
  policy at all — same answers, same cache provenance, same costs;
* with ``share_regions`` on, the full answer transcript equals the
  on-demand engine's for every request order Hypothesis draws, through
  churn — sharing may only move work, never change geometry;
* the δ-plan's knobs are monotone: a denser cell never gets a larger
  planned δ (scale is non-increasing, the relaxation floor is
  non-decreasing, and the planned δ never exceeds the base).
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.cloaking.engine import CloakingEngine
from repro.datasets.base import MutablePointDataset
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.tuning import DeltaPlan, TuningPolicy, build_plan, cell_occupancy
from repro.verify.worlds import build_world, churn_schedule, world_strategy

import pytest


def _make(built, world, tuning, min_area=0.0):
    return CloakingEngine(
        MutablePointDataset.from_dataset(built.dataset),
        built.graph.copy(),
        built.config,
        mode=world.mode,
        policy=world.policy,
        min_area=min_area,
        tuning=tuning,
    )


def _full_outcome(engine, host):
    """Everything observable about one answer, provenance included."""
    try:
        r = engine.request(host)
    except Exception as exc:
        return ("err", type(exc).__name__, str(exc))
    return (
        r.status,
        tuple(sorted(r.cluster.members)),
        r.region.rect,
        r.region.anonymity,
        r.region.cluster_id,
        r.region_from_cache,
        r.cluster.from_cache,
        r.clustering_messages,
        r.bounding_messages,
        r.relaxed_k,
    )


def _answer(engine, host):
    """The answer alone: what sharing is *not* allowed to change."""
    try:
        r = engine.request(host)
    except Exception as exc:
        return ("err", type(exc).__name__, str(exc))
    return (
        "ok",
        tuple(sorted(r.cluster.members)),
        r.region.rect,
        r.region.anonymity,
    )


class TestSharingOffIsTheSeedEngine:
    @settings(max_examples=20, deadline=None)
    @given(world=world_strategy(max_users=30))
    def test_default_policy_is_bit_identical_to_no_policy(self, world):
        built = build_world(world)
        with_policy = _make(built, world, TuningPolicy())
        without = _make(built, world, None)
        hosts = list(built.hosts)
        schedule = [("serve", None)]
        for batch in churn_schedule(built.world) if built.world.churn_moves else []:
            schedule += [("churn", batch), ("serve", None)]
        for op, batch in schedule:
            if op == "churn":
                with_policy.apply_moves(batch)
                without.apply_moves(batch)
                continue
            for host in hosts:
                assert _full_outcome(with_policy, host) == _full_outcome(
                    without, host
                ), f"host {host}: the all-off policy changed an outcome"
        assert with_policy.cached_regions() == without.cached_regions()
        assert with_policy.shared_slots() == {}
        assert with_policy.delta_plan() is None


class TestSharingOnIsTranscriptEqual:
    @settings(max_examples=20, deadline=None)
    @given(world=world_strategy(max_users=30), data=st.data())
    def test_any_request_order_matches_on_demand(self, world, data):
        built = build_world(world)
        order = data.draw(
            st.permutations(sorted(set(built.hosts))), label="order"
        )
        # Repeats exercise the shared-slot and demand-cache hit paths.
        order = list(order) + list(order[: max(1, len(order) // 2)])
        sharing = _make(built, world, TuningPolicy(share_regions=True))
        plain = _make(built, world, None)
        batches = list(churn_schedule(built.world)) if built.world.churn_moves else []
        for round_no in range(len(batches) + 1):
            for host in order:
                assert _answer(sharing, host) == _answer(plain, host), (
                    f"round {round_no}: sharing changed host {host}'s answer"
                )
            if round_no < len(batches):
                sharing.apply_moves(batches[round_no])
                plain.apply_moves(batches[round_no])
        # The caches converge too: promotion consumes region ids exactly
        # where the on-demand miss would have.
        assert sharing.cached_regions() == plain.cached_regions()

    @settings(max_examples=10, deadline=None)
    @given(world=world_strategy(max_users=24))
    def test_shared_hits_strictly_increase_after_churn(self, world):
        """Post-churn revisits hit the pre-computed slots, never fewer
        than the demand twin's cache manages."""
        built = build_world(world)
        sharing = _make(built, world, TuningPolicy(share_regions=True))
        plain = _make(built, world, None)
        hosts = list(built.hosts)
        for engine in (sharing, plain):
            for host in hosts:
                _answer(engine, host)
        batches = list(churn_schedule(built.world)) if built.world.churn_moves else []
        shared_hits = plain_hits = 0
        for batch in batches:
            sharing.apply_moves(batch)
            plain.apply_moves(batch)
            for host in hosts:
                try:
                    shared_hits += sharing.request(host).region_from_cache
                    plain_hits += plain.request(host).region_from_cache
                except Exception:
                    continue
        assert shared_hits >= plain_hits


occupancies = st.integers(0, 5000)


class TestDeltaPlanMonotonicity:
    @settings(max_examples=100)
    @given(
        occ_a=occupancies,
        occ_b=occupancies,
        pivot=st.floats(0.5, 200.0, allow_nan=False),
        scale_min=st.floats(0.01, 1.0, allow_nan=False, exclude_min=True),
    )
    def test_denser_cell_never_gets_a_larger_delta(
        self, occ_a, occ_b, pivot, scale_min
    ):
        plan = DeltaPlan(cell_size=0.1, pivot=pivot, scale_min=scale_min)
        lo, hi = sorted((occ_a, occ_b))
        assert plan.scale(hi) <= plan.scale(lo), (
            "scale must be monotone non-increasing in occupancy"
        )
        assert scale_min <= plan.scale(occ_a) <= 1.0
        assert plan.scale(0) == 1.0

    @settings(max_examples=100)
    @given(
        occ_a=occupancies,
        occ_b=occupancies,
        pivot=st.floats(0.5, 200.0, allow_nan=False),
        k=st.integers(2, 12),
        k_floor=st.integers(2, 12),
    )
    def test_relax_floor_monotone_and_bounded(
        self, occ_a, occ_b, pivot, k, k_floor
    ):
        plan = DeltaPlan(cell_size=0.1, pivot=pivot, scale_min=0.25)
        lo, hi = sorted((occ_a, occ_b))
        assert plan.relax_floor(lo, k, k_floor) <= plan.relax_floor(
            hi, k, k_floor
        ), "a denser cell must never allow a deeper relaxation"
        floor = plan.relax_floor(occ_a, k, k_floor)
        assert min(k, k_floor) <= floor <= k
        # At or above the pivot no relaxation is allowed at all.
        assert plan.relax_floor(math.ceil(pivot), k, k_floor) == k

    @settings(max_examples=60)
    @given(
        points=st.lists(
            st.tuples(
                st.floats(0.0, 1.0, allow_nan=False, width=32),
                st.floats(0.0, 1.0, allow_nan=False, width=32),
            ),
            min_size=0,
            max_size=60,
        ),
        cell=st.sampled_from([0.05, 0.1, 0.2, 0.33]),
        base=st.floats(0.01, 0.5, allow_nan=False),
    )
    def test_planned_delta_never_exceeds_base(self, points, cell, base):
        pts = [Point(x, y) for x, y in points]
        plan = build_plan(pts, cell, TuningPolicy(adapt_delta=True), k=3)
        total = sum(cell_occupancy(pts, cell).values())
        assert total == len(pts), "occupancy must count every live user"
        for point in pts:
            assert plan.delta_at(point, base) <= base
            assert plan.occupancy_at(point) >= 1, (
                "a user's own cell can never be empty"
            )

    def test_default_pivot_is_mean_occupancy(self):
        pts = [Point(0.05, 0.05)] * 4 + [Point(0.95, 0.95)] * 2
        plan = build_plan(pts, 0.5, TuningPolicy(), k=3)
        assert plan.pivot == pytest.approx(3.0)
        assert build_plan([], 0.5, TuningPolicy(), k=3).pivot == 1.0


class TestPolicyValidation:
    def test_round_trip(self):
        policy = TuningPolicy(
            share_regions=True, relax_k=True, k_floor=3, density_pivot=9.5
        )
        assert TuningPolicy.from_meta(policy.to_meta()) == policy

    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigurationError):
            TuningPolicy(k_floor=1)
        with pytest.raises(ConfigurationError):
            TuningPolicy(delta_scale_min=0.0)
        with pytest.raises(ConfigurationError):
            TuningPolicy(density_pivot=-1.0)
        with pytest.raises(ConfigurationError):
            TuningPolicy.from_meta({"share_regions": True, "nope": 1})

    def test_reliability_engine_refuses_tuning(self):
        from repro.network.reliability import ReliabilityPolicy
        from repro.verify.worlds import World

        built = build_world(
            World(seed=3, n=16, k=3, delta=0.2, mode="distributed")
        )
        # Engines with a reliability policy pin per-device protocol
        # state; the tuning loop is defined over the oblivious engine.
        with pytest.raises(ConfigurationError):
            CloakingEngine(
                MutablePointDataset.from_dataset(built.dataset),
                built.graph.copy(),
                built.config,
                mode="distributed",
                reliability=ReliabilityPolicy(),
                tuning=TuningPolicy(share_regions=True),
            )
