"""Seeded soak for the tuning layer: sharing + persistence under churn.

A long-lived engine with ``share_regions`` on runs 220 interleaved
operations — random-waypoint churn batches, cloaking requests, explicit
``retune()`` ticks, and checkpoint/warm-restart cycles through
:mod:`repro.persist` — lock-stepped against an untuned reference engine
consuming the identical schedule.  The operational checks:

* every answer (members, region bits, anonymity, typed failures) equals
  the untuned reference's, at every step, across every restart;
* the engine's cache accounting stays an identity:
  ``shared_hits + demand_hits + misses == requests``;
* the persisted tuning state round-trips — the restored engine carries
  the same policy, the same shared slots bit for bit, and the same
  region cache as the engine that checkpointed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.cloaking.engine import CloakingEngine
from repro.config import SimulationConfig
from repro.datasets.base import MutablePointDataset
from repro.datasets.synthetic import uniform_points
from repro.graph.build import build_wpg_fast
from repro.mobility.waypoint import RandomWaypointModel
from repro.obs import names as metric
from repro.persist import PersistentStore
from repro.tuning import TuningPolicy

N = 300
OPERATIONS = 220
MOVERS_PER_TICK = 8


def _answer(engine, host):
    try:
        r = engine.request(host)
    except Exception as exc:
        return ("err", type(exc).__name__, str(exc))
    return (
        "ok",
        tuple(sorted(r.cluster.members)),
        r.region.rect,
        r.region.anonymity,
        r.region.cluster_id,
    )


@pytest.fixture(scope="module")
def soak(tmp_path_factory):
    base = uniform_points(N, seed=33)
    config = SimulationConfig(
        user_count=N, k=4, delta=0.08, max_peers=6, seed=33
    )
    graph = build_wpg_fast(base, config.delta, config.max_peers)

    def make(tuning):
        return CloakingEngine(
            MutablePointDataset.from_dataset(base),
            graph.copy(),
            config,
            tuning=tuning,
        )

    store = PersistentStore(tmp_path_factory.mktemp("tuning-soak"))
    tuned = make(TuningPolicy(share_regions=True))
    reference = make(None)
    tuned.enable_persistence(store)

    walkers = RandomWaypointModel(
        base, min_speed=0.005, max_speed=0.03, seed=91
    )
    rng = np.random.default_rng(4021)
    registry = obs.enable(obs.MetricsRegistry())
    stats = {
        "requests": 0,
        "served": 0,
        "failed": 0,
        "churn": 0,
        "retunes": 0,
        "restores": 0,
        "shared_serves": 0,
        "divergences": [],
    }
    try:
        for _op in range(OPERATIONS):
            roll = rng.random()
            if roll < 0.45:
                host = int(rng.integers(0, N))
                got = _answer(tuned, host)
                want = _answer(reference, host)
                if got != want:
                    stats["divergences"].append((host, got, want))
                stats["requests"] += 1
                stats["served" if got[0] == "ok" else "failed"] += 1
                if got[0] == "ok":
                    slot = tuned.shared_slots().get(host)
                    if slot is not None:
                        stats["shared_serves"] += 1
            elif roll < 0.75:
                movers = rng.choice(N, size=MOVERS_PER_TICK, replace=False)
                batch = walkers.step_subset(np.sort(movers))
                tuned.apply_moves(batch)
                reference.apply_moves(batch)
                stats["churn"] += 1
            elif roll < 0.90:
                tuned.retune()
                stats["retunes"] += 1
            else:
                tuned.checkpoint()
                tuned.disable_persistence()
                restored = CloakingEngine.restore(store)
                assert restored.tuning == tuned.tuning, (
                    "restored engine lost the tuning policy"
                )
                assert restored.shared_slots() == tuned.shared_slots(), (
                    "shared slots did not round-trip through the snapshot"
                )
                assert restored.cached_regions() == tuned.cached_regions()
                assert restored.dataset.points == tuned.dataset.points
                tuned = restored  # continue the soak on the warm restart
                stats["restores"] += 1
    finally:
        obs.disable()
    tuned.disable_persistence()
    return registry, stats, tuned, reference


def test_soak_exercised_every_op(soak):
    _registry, stats, tuned, _reference = soak
    assert stats["requests"] + stats["churn"] + stats["retunes"] + stats[
        "restores"
    ] == OPERATIONS
    assert stats["served"] > 0
    assert stats["churn"] > 0
    assert stats["retunes"] > 0
    assert stats["restores"] > 0, "the soak never exercised a warm restart"
    assert stats["shared_serves"] > 0, (
        "no request was ever in a position to hit a shared slot — the "
        "workload is not exercising proactive sharing"
    )
    assert tuned.shared_slots(), "soak ended with no shared slots at all"


def test_lock_step_transcripts_never_diverged(soak):
    _registry, stats, _tuned, _reference = soak
    assert stats["divergences"] == [], (
        f"sharing changed {len(stats['divergences'])} answer(s); first: "
        f"{stats['divergences'][:1]}"
    )


def test_cache_accounting_identity(soak):
    registry, _stats, _tuned, _reference = soak
    counters = registry.counters

    def value(name):
        counter = counters.get(name)
        return counter.value if counter is not None else 0

    requests = value(metric.CLOAKING_REQUESTS)
    hits = value(metric.CLOAKING_CACHE_HITS)
    misses = value(metric.CLOAKING_CACHE_MISSES)
    shared = value(metric.ENGINE_CACHE_SHARED_HITS)
    demand = value(metric.ENGINE_CACHE_DEMAND_HITS)
    assert shared + demand == hits, (
        f"hit split broken: shared={shared} demand={demand} hits={hits}"
    )
    assert shared + demand + misses == requests, (
        f"accounting identity broken: shared={shared} demand={demand} "
        f"misses={misses} requests={requests}"
    )
    assert shared > 0, "the soak never served a shared hit"


def test_final_states_converged(soak):
    _registry, _stats, tuned, reference = soak
    assert tuned.cached_regions() == reference.cached_regions()
    assert set(tuned.clustering.registry.clusters()) == set(
        reference.clustering.registry.clusters()
    )
    # Every surviving slot is fresh: its cluster is registered and its
    # rect is what the member's on-demand request would compute now.
    regions = tuned.cached_regions()
    for member, (members, rect) in tuned.shared_slots().items():
        assert tuned.clustering.registry.cluster_of(member) == members
        cached = regions.get(members)
        if cached is not None:
            assert rect == cached.rect
        else:
            fresh, _ = tuned._bound(members, member)
            assert rect == tuned._enforce_granularity(fresh, member)
