"""Tests for the end-to-end message-level cloaking session."""

import pytest

from repro.cloaking.engine import CloakingEngine
from repro.cloaking.p2p_engine import P2PCloakingSession
from repro.config import SimulationConfig
from repro.datasets import uniform_points
from repro.errors import ConfigurationError, ProtocolError
from repro.geometry.rect import Rect
from repro.graph.build import build_wpg
from repro.graph.wpg import WeightedProximityGraph
from repro.network.failures import FailurePlan
from repro.network.simulator import PeerNetwork


@pytest.fixture(scope="module")
def world():
    config = SimulationConfig(
        user_count=400, delta=0.08, max_peers=8, k=6, request_count=20
    )
    dataset = uniform_points(400, seed=41)
    graph = build_wpg(dataset, config.delta, config.max_peers)
    return config, dataset, graph


class TestSession:
    def test_region_covers_cluster(self, world):
        config, dataset, graph = world
        session = P2PCloakingSession.bootstrapped(dataset, graph, config)
        result = session.request(3)
        assert result.region.satisfies(config.k)
        for member in result.cluster.members:
            assert result.region.rect.contains(dataset[member])
        assert result.unresolved_members == frozenset()

    def test_matches_analytic_engine_clusters(self, world):
        config, dataset, graph = world
        session = P2PCloakingSession.bootstrapped(dataset, graph, config)
        engine = CloakingEngine(dataset, graph, config, policy="secure")
        wire = session.request(3)
        analytic = engine.request(3)
        assert wire.cluster.members == analytic.cluster.members

    def test_region_cached_for_cluster(self, world):
        config, dataset, graph = world
        session = P2PCloakingSession.bootstrapped(dataset, graph, config)
        first = session.request(3)
        member = next(iter(first.cluster.members - {3}))
        second = session.request(member)
        assert second.region_from_cache
        assert second.bounding_messages == 0
        assert second.region.rect == first.region.rect

    def test_message_accounting_positive(self, world):
        config, dataset, graph = world
        session = P2PCloakingSession.bootstrapped(dataset, graph, config)
        result = session.request(3)
        assert result.clustering_messages > 0
        assert result.bounding_messages > 0
        assert result.messages_dropped == 0

    def test_lossy_network_still_correct(self, world):
        config, dataset, graph = world
        net = PeerNetwork(FailurePlan(drop_probability=0.2, seed=77))
        session = P2PCloakingSession.bootstrapped(
            dataset, graph, config, network=net, retries=40
        )
        result = session.request(3)
        assert result.messages_dropped > 0
        for member in result.cluster.members:
            assert result.region.rect.contains(dataset[member])

    def test_crashed_peer_aborts_phase1(self, world):
        config, dataset, graph = world
        # Find who host 3 would cluster with, then crash one of them.
        probe = P2PCloakingSession.bootstrapped(dataset, graph, config)
        victim = next(iter(probe.request(3).cluster.members - {3}))
        net = PeerNetwork(FailurePlan(crashed=[victim]))
        session = P2PCloakingSession.bootstrapped(
            dataset, graph, config, network=net
        )
        with pytest.raises(ProtocolError):
            session.request(3)
        assert session.registry.assigned_count == 0

    def test_region_clipped_to_unit_square(self, world):
        config, dataset, graph = world
        session = P2PCloakingSession.bootstrapped(dataset, graph, config)
        result = session.request(3)
        assert Rect.unit_square().contains_rect(result.region.rect)

    def test_size_mismatch_rejected(self, world):
        config, dataset, _graph = world
        with pytest.raises(ConfigurationError):
            P2PCloakingSession(
                PeerNetwork(), WeightedProximityGraph(), dataset, config
            )
