"""TreeClustering vs the closure reading of Algorithm 2, record for record.

The tree service claims bit-identity with
``DistributedClustering(closure=True)`` at the member/partition level —
these tests serve randomized request sequences through both and compare
results, error strings and full registry contents, then exercise the
marked-leaf fallback and the engine integration (``clustering="tree"``)
including churn patches.
"""

from __future__ import annotations

import random

import pytest

from repro import obs
from repro.clustering.base import ClusterRegistry
from repro.clustering.distributed import DistributedClustering
from repro.clustering.tree import TreeClustering
from repro.cloaking.engine import CloakingEngine
from repro.config import SimulationConfig
from repro.datasets import uniform_points
from repro.errors import ClusteringError, ConfigurationError
from repro.geometry.point import Point
from repro.graph.build import build_wpg_fast
from repro.graph.cluster_tree import ClusterTree
from repro.graph.wpg import WeightedProximityGraph
from repro.obs import names as metric


def random_graph(rng: random.Random, n: int, density: float) -> WeightedProximityGraph:
    graph = WeightedProximityGraph()
    for vertex in range(n):
        graph.add_vertex(vertex)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < density:
                graph.add_edge(u, v, float(rng.randint(1, 6)))
    return graph


def serve_both(graph, k, method, hosts):
    reference = DistributedClustering(
        graph, k, ClusterRegistry(), method=method, closure=True
    )
    service = TreeClustering(graph.copy(), k, ClusterRegistry(), method=method)
    for host in hosts:
        try:
            ref_result, ref_error = reference.request(host), None
        except ClusteringError as exc:
            ref_result, ref_error = None, str(exc)
        try:
            tree_result, tree_error = service.request(host), None
        except ClusteringError as exc:
            tree_result, tree_error = None, str(exc)
        assert tree_error == ref_error, (host, tree_error, ref_error)
        if ref_result is None:
            continue
        assert tree_result.members == ref_result.members, host
        assert tree_result.from_cache == ref_result.from_cache, host
        if not ref_result.from_cache:
            assert tree_result.connectivity == ref_result.connectivity, host
    return reference, service


def test_matches_closure_distributed_on_random_sequences():
    for seed in range(60):
        rng = random.Random(seed)
        n = rng.randint(2, 40)
        graph = random_graph(rng, n, rng.uniform(0.03, 0.3))
        k = rng.randint(1, 5)
        method = rng.choice(["greedy", "strict"])
        hosts = list(range(n))
        rng.shuffle(hosts)
        reference, service = serve_both(graph, k, method, hosts)
        # Same clusters registered in the same order.
        assert [
            reference.registry.cluster_by_id(i)
            for i in range(len(reference.registry))
        ] == [
            service.registry.cluster_by_id(i)
            for i in range(len(service.registry))
        ], seed


def test_cached_result_is_field_for_field_identical():
    rng = random.Random(3)
    graph = random_graph(rng, 20, 0.25)
    service = TreeClustering(graph, 3)
    first = service.request(0)
    again = service.request(0)
    assert again.host == 0
    assert again.members == first.members
    assert again.involved == 0
    assert again.connectivity == 0.0
    assert again.from_cache is True


def test_unknown_host_and_bad_k():
    graph = WeightedProximityGraph()
    graph.add_vertex(0)
    with pytest.raises(ConfigurationError):
        TreeClustering(graph, 0)
    service = TreeClustering(graph, 1)
    with pytest.raises(ClusteringError, match="unknown host"):
        service.request(5)


def test_undersized_component_fails_with_distributed_message():
    graph = WeightedProximityGraph()
    for v in range(3):
        graph.add_vertex(v)
    graph.add_edge(0, 1, 1.0)  # vertex 2 isolated
    service = TreeClustering(graph, 3)
    with pytest.raises(
        ClusteringError, match=r"fewer than k=3 reachable users remain"
    ):
        service.request(0)


def test_preassigned_registry_marks_and_falls_back(two_blobs_graph):
    # Users 4, 5 were clustered elsewhere before this service started:
    # blob B's node is marked, so a request from 6 cannot use the
    # oblivious tree walk and must take the exclusion-aware fallback.
    registry = ClusterRegistry()
    registry.register([4, 5])
    obs.enable()
    obs.reset()
    service = TreeClustering(two_blobs_graph, 2, registry)
    assert service.tree.marked == frozenset({4, 5})
    result = service.request(6)
    reference = DistributedClustering(
        two_blobs_graph, 2, closure=True
    )
    # The fallback excludes 4 and 5 exactly as a plain distributed pass
    # with the same registry would.
    expected = DistributedClustering(
        two_blobs_graph, 2, registry=None, closure=True
    )
    snapshot = obs.snapshot()["counters"]
    assert snapshot.get(metric.CLUSTERING_TREE_FALLBACKS) == 1.0
    assert not snapshot.get(metric.CLUSTERING_TREE_FAST)
    assert result.members == frozenset({6, 7})
    # The fallback's members are marked too, keeping later guards exact.
    assert service.tree.marked == frozenset({4, 5, 6, 7})
    del reference, expected


def test_fast_path_counters(two_blobs_graph):
    obs.enable()
    obs.reset()
    service = TreeClustering(two_blobs_graph, 4)
    service.request(0)
    service.request(0)  # cache hit
    snapshot = obs.snapshot()["counters"]
    assert snapshot.get(metric.CLUSTERING_TREE_FAST) == 1.0
    assert snapshot.get(metric.CLUSTERING_CACHE_HITS) == 1.0
    assert snapshot.get(metric.CLUSTERING_REQUESTS) == 2.0


def test_distributed_step1_tree_hook_matches_plain():
    for seed in range(25):
        rng = random.Random(40 + seed)
        n = rng.randint(2, 32)
        graph = random_graph(rng, n, rng.uniform(0.05, 0.3))
        k = rng.randint(1, 5)
        tree = ClusterTree(graph)
        plain = DistributedClustering(graph, k, closure=True)
        hooked = DistributedClustering(graph, k, closure=True, tree=tree)
        for host in range(n):
            try:
                a, ea = plain.propose(host), None
            except ClusteringError as exc:
                a, ea = None, str(exc)
            try:
                b, eb = hooked.propose(host), None
            except ClusteringError as exc:
                b, eb = None, str(exc)
            assert ea == eb, (seed, host)
            if a is None:
                continue
            assert a.groups == b.groups, (seed, host)
            assert a.connectivity == b.connectivity, (seed, host)
            assert a.involved == b.involved, (seed, host)


# -- engine integration --------------------------------------------------------


def build_engine(n, seed, k, clustering):
    dataset = uniform_points(n, seed=seed)
    config = SimulationConfig(
        user_count=n, delta=0.18, max_peers=5, k=k, seed=seed
    )
    graph = build_wpg_fast(dataset, config.delta, config.max_peers)
    if clustering == "reference":
        service = DistributedClustering(graph, k, closure=True)
        return CloakingEngine(
            dataset, graph, config, policy="secure", clustering=service
        )
    return CloakingEngine(
        dataset, graph, config, policy="secure", clustering=clustering
    )


def test_engine_tree_optin_matches_closure_reference_through_churn():
    rng = random.Random(17)
    n, k = 50, 3
    tree_engine = build_engine(n, 5, k, "tree")
    reference = build_engine(n, 5, k, "reference")
    assert isinstance(tree_engine.clustering, TreeClustering)
    hosts = rng.sample(range(n), 12)

    def compare_pass():
        for host in hosts:
            try:
                a, ea = tree_engine.request(host), None
            except ClusteringError as exc:
                a, ea = None, str(exc)
            try:
                b, eb = reference.request(host), None
            except ClusteringError as exc:
                b, eb = None, str(exc)
            assert ea == eb, host
            if a is None:
                continue
            assert a.cluster.members == b.cluster.members, host
            assert a.region.rect == b.region.rect, host
            assert a.region_from_cache == b.region_from_cache, host

    compare_pass()
    for _batch in range(4):
        moves = [
            (user, Point(rng.random(), rng.random()))
            for user in rng.sample(range(n), 5)
        ]
        tree_engine.apply_moves(moves)
        reference.apply_moves(moves)
        # The engine hook kept the tree identical to a fresh build.
        live = tree_engine.clustering.tree
        assert sorted(live.node_signatures()) == sorted(
            ClusterTree(tree_engine.graph).node_signatures()
        )
    compare_pass()


def test_engine_rejects_unknown_clustering_name():
    dataset = uniform_points(10, seed=1)
    config = SimulationConfig(user_count=10, delta=0.3, max_peers=4, k=2)
    graph = build_wpg_fast(dataset, config.delta, config.max_peers)
    with pytest.raises(ConfigurationError, match="unknown clustering service"):
        CloakingEngine(dataset, graph, config, clustering="treee")
