"""Churn-equivalence properties: mutations == rebuild, bit for bit.

Two families of properties back the dynamic-population runtime:

* After ANY random sequence of ``insert``/``remove``/``move`` operations,
  the mutated :class:`GridIndex` answers every query identically to a
  fresh index built from the final positions.  Removed ids leave holes
  (ids are never reused), so results are compared through the monotone
  live-id mapping — which preserves the per-cell ascending-id order the
  queries report in, making the comparison exact list equality, not just
  set equality.

* After ANY random batch sequence of moves, the incrementally-patched
  WPG equals :func:`build_wpg_fast` from scratch over the final
  positions (via the shared equality oracle from
  :mod:`repro.verify.invariants` — float weights compared bit for bit).
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.datasets.base import PointDataset
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.graph.build import build_wpg_fast
from repro.graph.incremental import IncrementalWPG
from repro.spatial.grid import GridIndex
from repro.verify.invariants import graph_equality_details

coordinate = st.floats(0.0, 1.0, allow_nan=False, width=32)
coordinate_pair = st.tuples(coordinate, coordinate)


def _mutate(data, grid: GridIndex, mirror: list) -> None:
    """One random mutation applied to both the grid and the mirror list."""
    live = [i for i, p in enumerate(mirror) if p is not None]
    ops = ["insert", "move", "move"]
    if len(live) > 1:
        ops.append("remove")
    op = data.draw(st.sampled_from(ops), label="op")
    if op == "insert":
        x, y = data.draw(coordinate_pair, label="insert at")
        idx = grid.insert(Point(x, y))
        mirror.append(Point(x, y))
        assert idx == len(mirror) - 1
    elif op == "remove":
        idx = data.draw(st.sampled_from(live), label="remove id")
        grid.remove(idx)
        mirror[idx] = None
    else:
        idx = data.draw(st.sampled_from(live), label="move id")
        x, y = data.draw(coordinate_pair, label="move to")
        grid.move(idx, Point(x, y))
        mirror[idx] = Point(x, y)


@given(st.data())
def test_mutated_grid_answers_like_fresh_index(data):
    initial = data.draw(
        st.lists(coordinate_pair, min_size=2, max_size=12), label="initial"
    )
    cell = data.draw(st.sampled_from([0.09, 0.13, 0.31]), label="cell_size")
    grid = GridIndex([Point(x, y) for x, y in initial], cell_size=cell)
    mirror: list = [Point(x, y) for x, y in initial]
    for _ in range(data.draw(st.integers(1, 20), label="ops")):
        _mutate(data, grid, mirror)
        if data.draw(st.booleans(), label="touch batch arrays"):
            # Force the batch-array cache into existence mid-sequence so
            # later mutations exercise the in-place patch paths, not
            # just the build-from-scratch path.
            grid.points_array()

    live = [i for i, p in enumerate(mirror) if p is not None]
    fresh = GridIndex([mirror[i] for i in live], cell_size=cell)
    to_fresh = {old: new for new, old in enumerate(live)}

    assert grid.live_count == len(live)
    assert sorted(grid.live_ids()) == live

    for _ in range(3):
        cx, cy = data.draw(coordinate_pair, label="query center")
        radius = data.draw(st.floats(0.0, 0.5, allow_nan=False), label="radius")
        center = Point(cx, cy)
        assert [
            to_fresh[i] for i in grid.query_radius(center, radius)
        ] == fresh.query_radius(center, radius)

        x2, y2 = data.draw(coordinate_pair, label="rect corner")
        rect = Rect(min(cx, x2), max(cx, x2), min(cy, y2), max(cy, y2))
        assert [
            to_fresh[i] for i in grid.query_rect(rect)
        ] == fresh.query_rect(rect)
        assert grid.count_rect(rect) == fresh.count_rect(rect)

        count = data.draw(st.integers(1, len(live) + 2), label="nn count")
        assert [
            to_fresh[i] for i in grid.nearest_neighbors(center, count)
        ] == fresh.nearest_neighbors(center, count)


@given(st.data())
def test_mutated_grid_batch_queries_match_fresh(data):
    initial = data.draw(
        st.lists(coordinate_pair, min_size=2, max_size=10), label="initial"
    )
    grid = GridIndex([Point(x, y) for x, y in initial], cell_size=0.13)
    mirror: list = [Point(x, y) for x, y in initial]
    grid.points_array()  # batch cache live from the start
    for _ in range(data.draw(st.integers(1, 12), label="ops")):
        _mutate(data, grid, mirror)

    live = [i for i, p in enumerate(mirror) if p is not None]
    fresh = GridIndex([mirror[i] for i in live], cell_size=0.13)
    to_fresh = {old: new for new, old in enumerate(live)}
    radius = data.draw(st.floats(0.0, 0.4, allow_nan=False), label="radius")

    coords = grid.points_array()
    indptr, nbrs = grid.batch_query_radius(radius, centers=coords[live])
    fresh_indptr, fresh_nbrs = fresh.batch_query_radius(radius)
    assert indptr.tolist() == fresh_indptr.tolist()
    assert [to_fresh[i] for i in nbrs.tolist()] == fresh_nbrs.tolist()


@given(st.data())
def test_incremental_wpg_equals_rebuild_after_random_moves(data):
    n = data.draw(st.integers(8, 24), label="n")
    coords = data.draw(
        st.lists(coordinate_pair, min_size=n, max_size=n), label="positions"
    )
    delta = data.draw(st.sampled_from([0.1, 0.18, 0.3]), label="delta")
    max_peers = data.draw(st.integers(2, 6), label="max_peers")
    points = [Point(x, y) for x, y in coords]
    grid = GridIndex(points, cell_size=delta)
    maintainer = IncrementalWPG(grid, delta, max_peers)
    current = list(points)

    for _ in range(data.draw(st.integers(1, 6), label="batches")):
        movers = sorted(
            data.draw(
                st.sets(st.integers(0, n - 1), min_size=1, max_size=4),
                label="movers",
            )
        )
        moves = []
        for user in movers:
            x, y = data.draw(coordinate_pair, label="target")
            point = Point(x, y)
            current[user] = point
            moves.append((user, point))
        patch = maintainer.apply_moves(moves)
        assert patch.moved == len(moves)
        assert set(movers) <= set(patch.touched_users)
        rebuilt = build_wpg_fast(PointDataset(current), delta, max_peers)
        assert (
            graph_equality_details(
                maintainer.graph, rebuilt, "incremental", "rebuild"
            )
            == []
        )
