"""Crash/warm-restart equivalence: restore is bit-identical, everywhere.

The suite drives a persisted :class:`CloakingEngine` and an
uninterrupted twin through identical serve + churn workloads and kills
the persisted one at adversarial points:

* at **every journal boundary** of the schedule (crash after batch 0,
  after batch 1, ...),
* **mid-record**, by truncating the write-ahead log at raw byte
  offsets inside the last appended frame (a torn tail must be
  discarded, never guessed at),
* inside the **checkpoint window** — snapshot committed, journal not
  yet truncated — where the monotonic-seq guard must skip the
  already-covered records on replay.

After each crash the engine restored from the store must match the
reference exactly: same WPG (float weights bit for bit), same cached
regions, same registry, same dataset positions, and the same answers
to the same requests going forward.
"""

from __future__ import annotations

import random

import pytest

from repro.cloaking.engine import CloakingEngine
from repro.config import SimulationConfig
from repro.datasets import uniform_points
from repro.datasets.base import MutablePointDataset
from repro.errors import ClusteringError, ConfigurationError, PersistError
from repro.geometry.point import Point
from repro.graph.build import build_wpg_fast
from repro.network import export_ledgers, import_ledgers
from repro.persist import ChurnJournal, PersistentStore
from repro.verify.invariants import graph_equality_details

USERS = 60
CONFIG = SimulationConfig(
    user_count=USERS, delta=0.16, max_peers=6, k=3, seed=7
)


def _fresh_parts():
    dataset = uniform_points(USERS, seed=7)
    graph = build_wpg_fast(dataset, CONFIG.delta, CONFIG.max_peers)
    return dataset, graph


def make_engine(**kwargs) -> CloakingEngine:
    dataset, graph = _fresh_parts()
    return CloakingEngine(
        MutablePointDataset.from_dataset(dataset), graph, CONFIG, **kwargs
    )


def make_batches(count: int = 5, movers: int = 8) -> list:
    rng = random.Random(99)
    batches = []
    for _ in range(count):
        users = rng.sample(range(USERS), movers)
        batches.append(
            [
                (user, Point(rng.uniform(0.02, 0.98), rng.uniform(0.02, 0.98)))
                for user in users
            ]
        )
    return batches


def serve(engine: CloakingEngine, hosts) -> list:
    outcomes = []
    for host in hosts:
        try:
            result = engine.request(host)
            outcomes.append(
                (
                    "ok",
                    tuple(sorted(result.cluster.members)),
                    result.region.rect,
                    result.region_from_cache,
                )
            )
        except ClusteringError as exc:
            outcomes.append(("err", str(exc)))
    return outcomes


def assert_engines_equal(restored: CloakingEngine, reference: CloakingEngine):
    details = graph_equality_details(
        restored.graph, reference.graph, "restored", "reference"
    )
    assert not details, details
    assert restored.cached_regions() == reference.cached_regions()
    reg_a, reg_b = restored.clustering.registry, reference.clustering.registry
    assert [sorted(reg_a.cluster_by_id(c)) for c in range(len(reg_a))] == [
        sorted(reg_b.cluster_by_id(c)) for c in range(len(reg_b))
    ]
    assert restored.dataset.points == reference.dataset.points
    tree_a = getattr(restored.clustering, "tree", None)
    tree_b = getattr(reference.clustering, "tree", None)
    if tree_a is not None and tree_b is not None:
        assert sorted(tree_a.node_signatures()) == sorted(
            tree_b.node_signatures()
        )


class TestCrashAtEveryJournalBoundary:
    @pytest.mark.parametrize("flavor", ["distributed", "centralized", "tree"])
    def test_every_boundary_restores_bit_identical(self, tmp_path, flavor):
        batches = make_batches()
        hosts = list(range(0, USERS, 5))
        for boundary in range(len(batches) + 1):
            root = tmp_path / f"{flavor}-{boundary}"
            kwargs = (
                {"clustering": "tree"}
                if flavor == "tree"
                else {"mode": flavor}
            )
            live = make_engine(**kwargs)
            reference = make_engine(**kwargs)
            live.enable_persistence(PersistentStore(root))
            assert serve(live, hosts) == serve(reference, hosts)
            live.checkpoint()
            for batch in batches[:boundary]:
                live.apply_moves(batch)
                reference.apply_moves(batch)
            live.disable_persistence()  # crash at the boundary

            restored = CloakingEngine.restore(PersistentStore(root))
            assert_engines_equal(restored, reference)
            # The restored engine must also BEHAVE identically from here.
            for batch in batches[boundary:]:
                restored.apply_moves(batch)
                reference.apply_moves(batch)
            assert serve(restored, hosts) == serve(reference, hosts)
            assert_engines_equal(restored, reference)
            restored.disable_persistence()


class TestTornTail:
    def _persisted_store(self, tmp_path, batches):
        """A store holding a checkpoint + every batch in the journal."""
        live = make_engine()
        live.enable_persistence(PersistentStore(tmp_path / "store"))
        serve(live, range(0, USERS, 5))
        live.checkpoint()
        for batch in batches:
            live.apply_moves(batch)
        live.disable_persistence()
        return tmp_path / "store"

    def test_truncation_at_every_byte_of_last_record(self, tmp_path):
        """Cut the journal anywhere inside the final frame: the intact
        prefix replays, the torn suffix is discarded without error."""
        batches = make_batches(count=3, movers=4)
        root = self._persisted_store(tmp_path, batches)
        journal = root / "journal.wal"
        pristine = journal.read_bytes()

        # Find the last record's start by walking the frames.
        records = ChurnJournal(journal).records()
        assert len(records) == len(batches)
        sizes = []
        probe = ChurnJournal(tmp_path / "probe.wal")
        for record in records:
            sizes.append(probe.append(record.seq, list(record.moves)))
        probe.close()
        last_start = len(pristine) - sizes[-1]

        reference = make_engine()
        serve(reference, range(0, USERS, 5))
        for batch in batches[:-1]:
            reference.apply_moves(batch)

        for cut in range(last_start + 1, len(pristine)):
            journal.write_bytes(pristine[:cut])
            restored = CloakingEngine.restore(PersistentStore(root))
            assert_engines_equal(restored, reference)
            restored.disable_persistence()

    def test_garbage_tail_is_discarded(self, tmp_path):
        batches = make_batches(count=2, movers=4)
        root = self._persisted_store(tmp_path, batches)
        with open(root / "journal.wal", "ab") as handle:
            handle.write(b"\xff\x13\x00\x00 not a frame")

        reference = make_engine()
        serve(reference, range(0, USERS, 5))
        for batch in batches:
            reference.apply_moves(batch)
        restored = CloakingEngine.restore(PersistentStore(root))
        assert_engines_equal(restored, reference)
        restored.disable_persistence()

    def test_mid_file_corruption_is_an_error(self, tmp_path):
        """A CRC-valid but undecodable record mid-file is tampering, not
        a torn tail — the journal refuses to guess."""
        journal = ChurnJournal(tmp_path / "j.wal")
        journal.append(1, [(0, Point(0.1, 0.2))])
        import json as _json
        import struct as _struct
        import zlib as _zlib

        payload = _json.dumps({"wrong": "shape"}).encode()
        with open(tmp_path / "j.wal", "ab") as handle:
            handle.write(_struct.pack("<II", len(payload), _zlib.crc32(payload)))
            handle.write(payload)
        journal.append(2, [(1, Point(0.3, 0.4))])
        with pytest.raises(PersistError):
            ChurnJournal(tmp_path / "j.wal").records()


class TestCheckpointCrashWindow:
    def test_snapshot_committed_journal_not_truncated(self, tmp_path):
        """Crash between snapshot commit and journal truncation: replay
        must skip every record the snapshot already covers."""
        batches = make_batches(count=4, movers=5)
        live = make_engine()
        reference = make_engine()
        store = PersistentStore(tmp_path / "store")
        live.enable_persistence(store)
        hosts = list(range(0, USERS, 4))
        assert serve(live, hosts) == serve(reference, hosts)
        for batch in batches[:2]:
            live.apply_moves(batch)
            reference.apply_moves(batch)
        # The checkpoint's first half only: snapshot lands, journal keeps
        # seqs 1..2 that the snapshot covers.
        store.write_snapshot(live.journal_seq, *live.snapshot_state())
        for batch in batches[2:]:
            live.apply_moves(batch)
            reference.apply_moves(batch)
        live.disable_persistence()

        restored = CloakingEngine.restore(PersistentStore(tmp_path / "store"))
        assert restored.journal_seq == reference_seq_of(batches)
        assert_engines_equal(restored, reference)
        assert serve(restored, hosts) == serve(reference, hosts)
        restored.disable_persistence()

    def test_rotation_restores_newest(self, tmp_path):
        batches = make_batches(count=3, movers=5)
        live = make_engine()
        reference = make_engine()
        live.enable_persistence(PersistentStore(tmp_path / "store"))
        hosts = list(range(0, USERS, 4))
        assert serve(live, hosts) == serve(reference, hosts)
        for batch in batches:
            live.apply_moves(batch)
            reference.apply_moves(batch)
            live.checkpoint()
        live.disable_persistence()
        snapshots = sorted((tmp_path / "store" / "snapshots").iterdir())
        assert len(snapshots) == 2  # KEEP_SNAPSHOTS prunes the rest
        restored = CloakingEngine.restore(PersistentStore(tmp_path / "store"))
        assert_engines_equal(restored, reference)
        restored.disable_persistence()


def reference_seq_of(batches) -> int:
    """Journal seqs are 1-based and one per non-empty batch."""
    return len(batches)


class TestRestoreRefusals:
    def test_empty_store(self, tmp_path):
        with pytest.raises(PersistError):
            CloakingEngine.restore(PersistentStore(tmp_path / "empty"))

    def test_corrupt_snapshot_arrays(self, tmp_path):
        live = make_engine()
        live.enable_persistence(PersistentStore(tmp_path / "store"))
        live.checkpoint()
        live.disable_persistence()
        [snap] = (tmp_path / "store" / "snapshots").iterdir()
        blob = bytearray((snap / "state.npz").read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        (snap / "state.npz").write_bytes(bytes(blob))
        with pytest.raises(PersistError, match="corrupt"):
            CloakingEngine.restore(PersistentStore(tmp_path / "store"))

    def test_custom_policy_refused(self):
        engine = make_engine(policy=lambda rect, area: rect)
        with pytest.raises(PersistError):
            engine.enable_persistence(None)

    def test_custom_clustering_refused(self, tmp_path):
        from repro.clustering.distributed import DistributedClustering

        dataset, graph = _fresh_parts()
        service = DistributedClustering(graph, CONFIG.k)
        engine = CloakingEngine(dataset, graph, CONFIG, clustering=service)
        with pytest.raises(PersistError):
            engine.enable_persistence(PersistentStore(tmp_path / "s"))

    def test_duplicate_ids_never_reach_the_journal(self, tmp_path):
        engine = make_engine()
        store = PersistentStore(tmp_path / "store")
        engine.enable_persistence(store)
        engine.apply_moves([(1, Point(0.5, 0.5))])
        with pytest.raises(ConfigurationError):
            engine.apply_moves(
                [(2, Point(0.1, 0.1)), (2, Point(0.2, 0.2))]
            )
        assert len(store.journal.records()) == 1
        engine.disable_persistence()


class TestReliabilityEngines:
    """Checkpoint allowed (ledger audits); restore refused by design."""

    def test_ledgers_snapshot_and_refused_restore(self, tmp_path):
        from repro.network import ReliabilityPolicy

        engine = make_engine(reliability=ReliabilityPolicy(seed=5))
        serve(engine, range(0, USERS, 6))
        store = PersistentStore(tmp_path / "store")
        engine.enable_persistence(store)
        engine.checkpoint()
        _, meta = store.require_latest_snapshot()
        assert meta["engine"]["reliability"] is True
        ledgers = meta["ledgers"]
        assert ledgers["format"] == "device-ledgers-v1"
        exported = export_ledgers(engine.devices)
        assert ledgers == exported
        with pytest.raises(PersistError, match="reliability"):
            CloakingEngine.restore(store)
        engine.disable_persistence()

    def test_ledger_roundtrip_restores_disclosures(self):
        from repro.network import ReliabilityPolicy

        engine = make_engine(reliability=ReliabilityPolicy(seed=5))
        serve(engine, range(0, USERS, 6))
        exported = export_ledgers(engine.devices)
        twin = make_engine(reliability=ReliabilityPolicy(seed=5))
        import_ledgers(twin.devices, exported)
        assert export_ledgers(twin.devices) == exported
