"""Properties backing the greedy fast path's graph surgery.

``_side_of`` / ``_expand`` (the bidirectional BFS the greedy refinement
trusts for every bridge decision) are pinned to a naive single-source
BFS over randomized graphs guaranteed to contain bridges (random
spanning tree + extra chords).  The fast ``_greedy_refine`` — presorted
per-component edge lists, partitioned on split — is pinned to the
literal re-enumerating ``_greedy_refine_naive`` it replaced: same
clusters, same order.
"""

from __future__ import annotations

import random

from hypothesis import given, strategies as st

from repro.clustering.centralized import (
    _greedy_refine,
    _greedy_refine_naive,
    _side_of,
)
from repro.graph.components import connected_components
from repro.graph.wpg import WeightedProximityGraph


def bridge_rich_graph(rng: random.Random, n: int, chords: int) -> WeightedProximityGraph:
    """A random spanning tree plus ``chords`` extra edges.

    Every tree edge not covered by a chord cycle is a bridge, so the
    generator reliably exercises both outcomes of ``_side_of``.
    """
    graph = WeightedProximityGraph()
    graph.add_vertex(0)
    for vertex in range(1, n):
        graph.add_vertex(vertex)
        graph.add_edge(vertex, rng.randrange(vertex), float(rng.randint(1, 9)))
    for _ in range(chords):
        u, v = rng.sample(range(n), 2)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v, float(rng.randint(1, 9)))
    return graph


def naive_side(graph: WeightedProximityGraph, start: int) -> set[int]:
    seen = {start}
    stack = [start]
    while stack:
        vertex = stack.pop()
        for neighbor in graph.neighbors(vertex):
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return seen


@given(
    seed=st.integers(0, 10_000),
    n=st.integers(2, 30),
    chords=st.integers(0, 12),
)
def test_side_of_matches_naive_bfs(seed, n, chords):
    rng = random.Random(seed)
    graph = bridge_rich_graph(rng, n, chords)
    component = next(iter(connected_components(graph)))
    edges = [
        (u, v) for u in sorted(component)
        for v in graph.neighbors(u) if u < v
    ]
    for u, v in edges:
        weight = graph.weight(u, v)
        graph.remove_edge(u, v)
        side = _side_of(graph, u, v, component)
        u_side = naive_side(graph, u)
        if v in u_side:
            assert side is None, (u, v)
        else:
            assert side == u_side, (u, v)
            assert (component - side) == naive_side(graph, v), (u, v)
        graph.add_edge(u, v, weight)


@given(
    seed=st.integers(0, 10_000),
    n=st.integers(2, 26),
    density=st.floats(0.05, 0.35),
    k=st.integers(1, 5),
)
def test_fast_refine_equals_naive_refine(seed, n, density, k):
    rng = random.Random(seed)
    graph = WeightedProximityGraph()
    for vertex in range(n):
        graph.add_vertex(vertex)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < density:
                graph.add_edge(u, v, float(rng.randint(1, 6)))
    # Both refiners mutate their input; feed each its own copy.
    fast = _greedy_refine(graph.copy(), k)
    naive = _greedy_refine_naive(graph.copy(), k)
    assert fast == naive
