"""Shared fixtures: small deterministic datasets and graphs."""

from __future__ import annotations

import os

import pytest

try:
    from hypothesis import settings

    from repro.verify.worlds import register_profiles

    register_profiles()
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro-ci"))
except ImportError:  # hypothesis is a dev extra; property suites skip without it
    pass

from repro.config import SimulationConfig
from repro.datasets import uniform_points
from repro.datasets.base import PointDataset
from repro.geometry.point import Point
from repro.graph.build import build_wpg
from repro.graph.wpg import WeightedProximityGraph


@pytest.fixture(scope="session")
def small_dataset() -> PointDataset:
    """600 uniform users; dense enough for k=5 clustering everywhere."""
    return uniform_points(600, seed=11)


@pytest.fixture(scope="session")
def small_config() -> SimulationConfig:
    return SimulationConfig(
        user_count=600, delta=0.06, max_peers=8, k=5, request_count=50
    )


@pytest.fixture(scope="session")
def small_graph(small_dataset, small_config) -> WeightedProximityGraph:
    return build_wpg(
        small_dataset, small_config.delta, small_config.max_peers
    )


@pytest.fixture()
def two_blobs_graph() -> WeightedProximityGraph:
    """Two tight 4-cliques joined by one heavy bridge edge.

    Hand-checkable: 2-clustering and 4-clustering results are obvious.
    Vertices 0-3 form blob A (internal weights 1-2), vertices 4-7 form
    blob B, and edge (3, 4) has weight 9.
    """
    graph = WeightedProximityGraph()
    blob_a = [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 2.0), (0, 2, 2.0), (1, 3, 2.0), (0, 3, 2.0)]
    blob_b = [(4, 5, 1.0), (5, 6, 1.0), (6, 7, 2.0), (4, 6, 2.0), (5, 7, 2.0), (4, 7, 2.0)]
    for u, v, w in blob_a + blob_b:
        graph.add_edge(u, v, w)
    graph.add_edge(3, 4, 9.0)
    return graph


@pytest.fixture()
def chain_graph() -> WeightedProximityGraph:
    """A 9-vertex path with descending weights 8, 7, 6, ..., 1."""
    graph = WeightedProximityGraph()
    for i, weight in enumerate(range(8, 0, -1)):
        graph.add_edge(i, i + 1, float(weight))
    return graph


@pytest.fixture()
def grid_points_dataset() -> PointDataset:
    """A 5x5 lattice in the unit square (predictable neighbourhoods)."""
    spacing = 1.0 / 5
    points = [
        Point((i + 0.5) * spacing, (j + 0.5) * spacing)
        for i in range(5)
        for j in range(5)
    ]
    return PointDataset(points, name="lattice-5x5")
