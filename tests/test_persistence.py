"""Tests for WPG and cluster-registry persistence."""

import pytest

from repro.clustering.base import ClusterRegistry
from repro.clustering.distributed import DistributedClustering
from repro.clustering.registry_io import load_registry, save_registry
from repro.datasets import uniform_points
from repro.errors import ClusteringError, GraphError
from repro.graph.build import build_wpg
from repro.graph.io import load_wpg, save_wpg
from repro.graph.wpg import WeightedProximityGraph


class TestWPGRoundtrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        dataset = uniform_points(120, seed=5)
        graph = build_wpg(dataset, delta=0.12, max_peers=6)
        path = tmp_path / "graph.csv"
        save_wpg(graph, path)
        loaded = load_wpg(path)
        assert set(loaded.vertices()) == set(graph.vertices())
        assert sorted((e.key(), e.weight) for e in loaded.edges()) == sorted(
            (e.key(), e.weight) for e in graph.edges()
        )

    def test_isolated_vertices_survive(self, tmp_path):
        graph = WeightedProximityGraph.from_edges(
            [(0, 1, 2.5)], vertices=[7, 9]
        )
        path = tmp_path / "graph.csv"
        save_wpg(graph, path)
        loaded = load_wpg(path)
        assert 7 in loaded and 9 in loaded
        assert loaded.degree(7) == 0

    def test_float_weights_exact(self, tmp_path):
        graph = WeightedProximityGraph.from_edges([(0, 1, 0.1 + 0.2)])
        path = tmp_path / "graph.csv"
        save_wpg(graph, path)
        assert load_wpg(path).weight(0, 1) == 0.1 + 0.2  # repr() roundtrip

    def test_missing_file(self, tmp_path):
        with pytest.raises(GraphError):
            load_wpg(tmp_path / "nope.csv")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("u,v,weight\n0,1,2.0\n")
        with pytest.raises(GraphError):
            load_wpg(path)

    def test_malformed_edge_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("# wpg v1\n# isolated:\nu,v,weight\n0,zero,1\n")
        with pytest.raises(GraphError):
            load_wpg(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(GraphError, match="empty"):
            load_wpg(path)

    def test_version_mismatch(self, tmp_path):
        path = tmp_path / "future.csv"
        path.write_text("# wpg v2\n# isolated:\nu,v,weight\n0,1,0.5\n")
        with pytest.raises(GraphError, match="v2"):
            load_wpg(path)

    def test_missing_isolated_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("# wpg v1\nu,v,weight\n0,1,0.5\n")
        with pytest.raises(GraphError):
            load_wpg(path)

    def test_malformed_column_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("# wpg v1\n# isolated:\nsource,target,w\n0,1,0.5\n")
        with pytest.raises(GraphError):
            load_wpg(path)

    def test_duplicate_edge_rejected(self, tmp_path):
        path = tmp_path / "dup.csv"
        path.write_text(
            "# wpg v1\n# isolated:\nu,v,weight\n0,1,0.5\n1,0,0.6\n"
        )
        with pytest.raises(GraphError, match="duplicate"):
            load_wpg(path)

    def test_malformed_row_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "# wpg v1\n# isolated:\nu,v,weight\n0,1,0.5\n2,3\n"
        )
        with pytest.raises(GraphError, match=":5:"):
            load_wpg(path)

    def test_clustering_identical_on_loaded_graph(self, tmp_path):
        """The acid test: algorithms behave identically on a reloaded WPG."""
        from repro.experiments.workloads import sample_hosts

        dataset = uniform_points(200, seed=8)
        graph = build_wpg(dataset, delta=0.15, max_peers=6)
        host = sample_hosts(graph, 5, 1, seed=0)[0]
        path = tmp_path / "graph.csv"
        save_wpg(graph, path)
        loaded = load_wpg(path)
        a = DistributedClustering(graph, 5).request(host)
        b = DistributedClustering(loaded, 5).request(host)
        assert a.members == b.members
        assert a.involved == b.involved


class TestRegistryRoundtrip:
    def test_roundtrip_preserves_ids_and_members(self, tmp_path):
        registry = ClusterRegistry()
        registry.register({3, 1, 2})
        registry.register({9, 8})
        path = tmp_path / "registry.json"
        save_registry(registry, path)
        loaded = load_registry(path)
        assert len(loaded) == 2
        assert loaded.cluster_by_id(0) == frozenset({1, 2, 3})
        assert loaded.cluster_of(8) == frozenset({8, 9})
        loaded.check_reciprocity()

    def test_empty_registry(self, tmp_path):
        path = tmp_path / "registry.json"
        save_registry(ClusterRegistry(), path)
        assert len(load_registry(path)) == 0

    def test_missing_file(self, tmp_path):
        with pytest.raises(ClusteringError):
            load_registry(tmp_path / "nope.json")

    def test_not_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{{{")
        with pytest.raises(ClusteringError):
            load_registry(path)

    def test_wrong_format_marker(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else", "clusters": []}')
        with pytest.raises(ClusteringError):
            load_registry(path)

    def test_resumed_session_serves_from_cache(self, tmp_path):
        """Restart semantics: a reloaded registry answers cached hosts."""
        from repro.experiments.workloads import sample_hosts

        dataset = uniform_points(200, seed=8)
        graph = build_wpg(dataset, delta=0.15, max_peers=6)
        host = sample_hosts(graph, 5, 1, seed=0)[0]
        first_session = DistributedClustering(graph, 5)
        original = first_session.request(host)
        path = tmp_path / "registry.json"
        save_registry(first_session.registry, path)

        second_session = DistributedClustering(
            graph, 5, registry=load_registry(path)
        )
        resumed = second_session.request(host)
        assert resumed.from_cache
        assert resumed.members == original.members
