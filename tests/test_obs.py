"""Observability layer: registry, spans, export, and pipeline wiring.

Also covers the two accounting satellites of the obs PR:

* ``CloakingEngine.request_many`` cache hit/miss counters against a
  known cluster structure, including invalidation;
* message-accounting reconciliation between the analytic bounding
  protocol (Cb units) and the message-level network layer — both report
  through the canonical ``bounding.verifications`` counter.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.bounding.p2p import p2p_upper_bound
from repro.bounding.policies import LinearPolicy
from repro.bounding.protocol import BoundingOutcome, progressive_upper_bound
from repro.cloaking.engine import CloakingEngine
from repro.datasets import uniform_points
from repro.errors import ConfigurationError
from repro.graph.build import build_wpg
from repro.network.node import populate_network
from repro.network.simulator import PeerNetwork
from repro.obs import names as metric
from repro.obs.report import main as report_main, render


@pytest.fixture()
def metrics():
    """A fresh active registry for one test; always disabled afterwards."""
    registry = obs.enable(obs.MetricsRegistry())
    obs.reset_traces()
    yield registry
    obs.disable()
    obs.reset_traces()


SCHEMA = {
    "schema": "obs/v1",
    "name_pattern": r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$",
    "sections": {
        "counters": "number",
        "gauges": "number",
        "histograms": "histogram",
        "spans": "histogram",
    },
}


class TestRegistry:
    def test_counter_gauge_histogram(self, metrics):
        obs.inc("a.count")
        obs.inc("a.count", 2.5)
        obs.set_gauge("a.level", -3)
        obs.observe("a.sizes", 5)
        obs.observe("a.sizes", 100)
        assert metrics.counters["a.count"].value == 3.5
        assert metrics.gauges["a.level"].value == -3
        hist = metrics.histograms["a.sizes"]
        assert hist.count == 2
        assert hist.total == 105
        assert hist.min == 5 and hist.max == 100
        assert sum(hist.bucket_counts) == 2

    def test_malformed_names_rejected(self, metrics):
        for bad in ("Caps.name", "1leading", "has space", "trail.", "a..b", ""):
            with pytest.raises(ConfigurationError):
                obs.inc(bad)

    def test_counters_cannot_decrease(self, metrics):
        with pytest.raises(ConfigurationError):
            obs.inc("a.count", -1)

    def test_disabled_is_a_noop(self):
        assert not obs.enabled()
        obs.inc("ignored.counter")
        obs.observe("ignored.hist", 1.0)
        obs.set_gauge("ignored.gauge", 1.0)
        with obs.span("ignored.span"):
            pass
        registry = obs.enable(obs.MetricsRegistry())
        try:
            assert registry.counters == {}
            assert registry.spans == {}
        finally:
            obs.disable()

    def test_reset_clears_metrics(self, metrics):
        obs.inc("a.count")
        obs.reset()
        assert metrics.counters == {}

    def test_histogram_bounds_must_ascend(self, metrics):
        with pytest.raises(ConfigurationError):
            metrics.histogram("bad.hist", bounds=(1.0, 1.0))


class TestSpans:
    def test_nesting_and_trace_ids(self, metrics):
        with obs.span("outer.a"):
            with obs.span("inner.b"):
                pass
        with obs.span("outer.c"):
            pass
        records = obs.recent_spans()
        by_name = {r.name: r for r in records}
        assert by_name["inner.b"].depth == 1
        assert by_name["outer.a"].depth == 0
        assert by_name["inner.b"].trace_id == by_name["outer.a"].trace_id
        assert by_name["outer.c"].trace_id != by_name["outer.a"].trace_id
        assert metrics.spans["outer.a"].count == 1
        # Children complete before parents, so durations nest.
        assert by_name["inner.b"].duration <= by_name["outer.a"].duration

    def test_last_trace_returns_whole_tree(self, metrics):
        with obs.span("first.request"):
            pass
        with obs.span("second.request"):
            with obs.span("second.child"):
                pass
        trace = obs.last_trace()
        assert {r.name for r in trace} == {"second.request", "second.child"}

    def test_disabled_span_is_shared_noop(self):
        assert obs.span("x.y") is obs.span("z.w")


class TestExport:
    def test_snapshot_roundtrip_and_validation(self, metrics):
        obs.inc(metric.CLOAKING_REQUESTS, 7)
        obs.set_gauge(metric.WPG_EDGES, 42)
        obs.observe(metric.BOUNDING_ITERATIONS_PER_RUN, 3)
        with obs.span(metric.SPAN_REQUEST):
            pass
        snap = obs.snapshot()
        assert snap["schema"] == "obs/v1"
        assert snap["counters"][metric.CLOAKING_REQUESTS] == 7
        assert obs.validate_snapshot(snap, SCHEMA) == []
        # JSON-serialisable (no infinities leak out).
        reparsed = json.loads(json.dumps(snap))
        assert obs.validate_snapshot(reparsed, SCHEMA) == []

    def test_validation_catches_malformed_names_and_histograms(self):
        bad = {
            "schema": "obs/v1",
            "counters": {"Bad-Name": 1, "ok.name": float("nan")},
            "gauges": {},
            "histograms": {
                "ok.hist": {
                    "count": 3,
                    "total": 1.0,
                    "mean": 0.3,
                    "min": 0,
                    "max": 1,
                    "bounds": [1.0, 2.0],
                    "bucket_counts": [1, 1],  # wrong length
                }
            },
            "spans": {},
        }
        errors = obs.validate_snapshot(bad, SCHEMA)
        assert any("malformed metric name" in e for e in errors)
        assert any("non-finite" in e for e in errors)
        assert any("bucket_counts" in e for e in errors)

    def test_prometheus_text_format(self, metrics):
        obs.inc(metric.CLOAKING_CACHE_HITS, 3)
        with obs.span(metric.SPAN_BOUNDING):
            pass
        text = obs.to_prometheus()
        assert "cloaking_cache_hits_total 3.0" in text
        assert "# TYPE cloaking_bounding_seconds histogram" in text
        assert 'le="+Inf"' in text

    def test_snapshot_requires_enabled_registry(self):
        with pytest.raises(ConfigurationError):
            obs.snapshot()

    def test_load_snapshot_from_bench_file(self, metrics, tmp_path):
        obs.inc(metric.CLOAKING_REQUESTS)
        bench = {
            "schema": "bench_wpg/v2",
            "sizes": [{"users": 10, "obs": {"snapshot": obs.snapshot()}}],
        }
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(bench))
        loaded = obs.load_snapshot(path)
        assert loaded["counters"][metric.CLOAKING_REQUESTS] == 1


class TestBoundingOutcomeDefaults:
    def test_omitted_rounds_assume_last_iteration(self):
        outcome = BoundingOutcome(
            bound=2.0,
            start=0.0,
            iterations=5,
            messages=9,
            agreement_intervals={0: (1.5, 2.0), 1: (float("-inf"), 0.0)},
        )
        assert outcome.agreement_rounds == {0: 5, 1: 5}

    def test_empty_intervals_keep_empty_rounds(self):
        outcome = BoundingOutcome(
            bound=0.0, start=0.0, iterations=0, messages=0,
            agreement_intervals={},
        )
        assert outcome.agreement_rounds == {}

    def test_explicit_rounds_untouched(self):
        outcome = BoundingOutcome(
            bound=2.0, start=0.0, iterations=5, messages=9,
            agreement_intervals={0: (1.5, 2.0)},
            agreement_rounds={0: 3},
        )
        assert outcome.agreement_rounds == {0: 3}

    def test_exposed_users_counts_finite_intervals(self):
        outcome = BoundingOutcome(
            bound=2.0, start=0.0, iterations=2, messages=4,
            agreement_intervals={
                0: (float("-inf"), 0.0),  # covered by the start: no leak
                1: (1.0, 2.0),
                2: (0.0, 1.0),
            },
        )
        assert outcome.exposed_users == 2


class TestRequestManyCacheAccounting:
    """Satellite: hit/miss counters vs the known cluster structure."""

    def _engine(self, small_dataset, small_graph, small_config):
        return CloakingEngine(small_dataset, small_graph, small_config)

    def test_counters_match_cluster_structure(
        self, metrics, small_dataset, small_graph, small_config
    ):
        engine = self._engine(small_dataset, small_graph, small_config)
        first = engine.request(0)
        members = sorted(first.cluster.members)
        assert not first.region_from_cache
        # Every cluster mate (and the host again) is a region-cache hit,
        # served by request_many's fast path.
        results = engine.request_many(members)
        assert all(r.region_from_cache for r in results)
        counters = metrics.counters
        assert counters[metric.CLOAKING_REQUESTS].value == 1 + len(members)
        assert counters[metric.CLOAKING_CACHE_MISSES].value == 1
        assert counters[metric.CLOAKING_CACHE_HITS].value == len(members)

    def test_hit_miss_split_matches_results(
        self, metrics, small_dataset, small_graph, small_config
    ):
        engine = self._engine(small_dataset, small_graph, small_config)
        hosts = list(range(40)) + list(range(20))
        results = engine.request_many(hosts)
        hits = sum(1 for r in results if r.region_from_cache)
        counters = metrics.counters
        assert counters[metric.CLOAKING_REQUESTS].value == len(hosts)
        assert counters[metric.CLOAKING_CACHE_HITS].value == hits
        assert counters[metric.CLOAKING_CACHE_MISSES].value == len(hosts) - hits
        assert metrics.gauges[metric.CLOAKING_REGIONS_CACHED].value == (
            engine.regions_cached
        )

    def test_invalidate_region_resets_cache_accounting(
        self, metrics, small_dataset, small_graph, small_config
    ):
        engine = self._engine(small_dataset, small_graph, small_config)
        first = engine.request(0)
        members = first.cluster.members
        assert engine.invalidate_region(members)
        counters = metrics.counters
        assert counters[metric.CLOAKING_REGIONS_INVALIDATED].value == 1
        assert metrics.gauges[metric.CLOAKING_REGIONS_CACHED].value == 0
        # The next batch over the same cluster re-bounds once (a miss),
        # then serves the mates from the rebuilt cache.
        results = engine.request_many(sorted(members))
        assert not results[0].region_from_cache
        assert all(r.region_from_cache for r in results[1:])
        assert counters[metric.CLOAKING_CACHE_MISSES].value == 2
        assert counters[metric.CLOAKING_CACHE_HITS].value == len(members) - 1

    def test_clear_regions_counts_all_drops(
        self, metrics, small_dataset, small_graph, small_config
    ):
        engine = self._engine(small_dataset, small_graph, small_config)
        engine.request_many(range(30))
        cached = engine.regions_cached
        assert engine.clear_regions() == cached
        counters = metrics.counters
        assert counters[metric.CLOAKING_REGIONS_INVALIDATED].value == cached
        assert metrics.gauges[metric.CLOAKING_REGIONS_CACHED].value == 0


class TestSharedHitAccounting:
    """The shared/demand cache-hit split and the shared-hit status stamp."""

    def _engine(self, small_dataset, small_graph, small_config, tuning=None):
        return CloakingEngine(
            small_dataset, small_graph, small_config, tuning=tuning
        )

    def test_shared_and_demand_hits_partition_cache_hits(
        self, metrics, small_dataset, small_graph, small_config
    ):
        from repro.tuning import TuningPolicy

        engine = self._engine(
            small_dataset,
            small_graph,
            small_config,
            tuning=TuningPolicy(share_regions=True),
        )
        first = engine.request(0)
        assert first.status == "ok"
        mates = sorted(first.cluster.members - {0})
        # The miss pushed the region into every member's slot, so each
        # mate is served as a *shared* hit, stamped as such.
        for mate in mates:
            result = engine.request(mate)
            assert result.region_shared
            assert result.status == "cache_hit_shared"
            assert result.region.rect == first.region.rect
        counters = metrics.counters
        hits = counters[metric.CLOAKING_CACHE_HITS].value
        shared = counters[metric.ENGINE_CACHE_SHARED_HITS].value
        assert shared == len(mates) == hits
        assert metric.ENGINE_CACHE_DEMAND_HITS not in counters
        assert (
            shared
            + counters[metric.CLOAKING_CACHE_MISSES].value
            == counters[metric.CLOAKING_REQUESTS].value
        )

    def test_untuned_hits_are_demand_hits(
        self, metrics, small_dataset, small_graph, small_config
    ):
        engine = self._engine(small_dataset, small_graph, small_config)
        first = engine.request(0)
        mates = sorted(first.cluster.members - {0})
        for mate in mates:
            result = engine.request(mate)
            assert not result.region_shared
            assert result.status == "cache_hit"
        counters = metrics.counters
        assert counters[metric.ENGINE_CACHE_DEMAND_HITS].value == len(mates)
        assert metric.ENGINE_CACHE_SHARED_HITS not in counters
        assert (
            counters[metric.ENGINE_CACHE_DEMAND_HITS].value
            == counters[metric.CLOAKING_CACHE_HITS].value
        )

    def test_request_many_splits_batched_hits(
        self, metrics, small_dataset, small_graph, small_config
    ):
        from repro.tuning import TuningPolicy

        engine = self._engine(
            small_dataset,
            small_graph,
            small_config,
            tuning=TuningPolicy(share_regions=True),
        )
        first = engine.request(0)
        members = sorted(first.cluster.members)
        results = engine.request_many(members)
        assert all(r.region_from_cache for r in results)
        assert all(r.status == "cache_hit_shared" for r in results)
        counters = metrics.counters
        assert counters[metric.ENGINE_CACHE_SHARED_HITS].value == len(members)

    def test_flight_recorder_stamps_shared_status(
        self, small_dataset, small_graph, small_config
    ):
        from repro.obs import trace
        from repro.tuning import TuningPolicy

        engine = self._engine(
            small_dataset,
            small_graph,
            small_config,
            tuning=TuningPolicy(share_regions=True),
        )
        recorder = trace.install_recorder(trace.FlightRecorder())
        try:
            first = engine.request(0)
            mate = sorted(first.cluster.members - {0})[0]
            engine.request(mate)
            ends = [
                e for e in recorder.events()
                if e.kind == trace.EVT_REQUEST_END
            ]
            assert [e.fields["status"] for e in ends] == [
                "ok",
                "cache_hit_shared",
            ]
            shared_hits = [
                e for e in recorder.events()
                if e.kind == trace.EVT_CACHE_HIT
                and e.fields.get("shared")
            ]
            assert len(shared_hits) == 1
        finally:
            trace.uninstall_recorder()


class TestMessageAccountingReconciliation:
    """Satellite: protocol-layer Cb units vs network-layer message counts."""

    @pytest.fixture()
    def world(self):
        ds = uniform_points(40, seed=5)
        graph = build_wpg(ds, delta=0.5, max_peers=12)
        network = PeerNetwork()
        populate_network(network, graph, list(ds.points))
        return ds, graph, network

    def test_layers_agree_through_shared_counters(self, metrics, world):
        ds, _graph, network = world
        members = [1, 2, 3, 4, 5]
        # The host drives the run but is not a member: every verification
        # is then a real round trip, so protocol Cb units and network
        # request legs must match one for one.
        host = 0
        start = min(ds[m].x for m in members) - 0.05
        report = p2p_upper_bound(
            network, host, members, axis=0, sign=1.0, start=start,
            policy=LinearPolicy(0.08),
        )
        counters = metrics.counters
        verifications = counters[metric.BOUNDING_VERIFICATIONS].value
        assert verifications == report.outcome.messages
        assert (
            counters[metric.network_kind("verify_bound")].value == verifications
        )
        assert (
            counters[metric.network_kind("verify_bound:reply")].value
            == verifications
        )
        # Total legs: one request plus one reply per verification.
        assert counters[metric.NETWORK_MESSAGES_SENT].value == 2 * verifications
        assert counters[metric.NETWORK_CALLS].value == verifications
        # No drops on a failure-free network: the counter never appears.
        assert metric.NETWORK_MESSAGES_DROPPED not in counters

    def test_p2p_matches_analytic_plus_screening(self, metrics, world):
        ds, _graph, network = world
        members = [1, 2, 3, 4, 5]
        host = 0
        start = min(ds[m].x for m in members) - 0.05
        values = [ds[m].x for m in members]
        analytic = progressive_upper_bound(values, start, LinearPolicy(0.08))
        report = p2p_upper_bound(
            network, host, members, axis=0, sign=1.0, start=start,
            policy=LinearPolicy(0.08),
        )
        # Identical run: same bound and iteration count; the wire pays
        # one extra screening round trip per member (the host cannot know
        # who the starting bound covers without asking).
        assert report.outcome.bound == pytest.approx(analytic.bound)
        assert report.outcome.iterations == analytic.iterations
        assert report.outcome.messages == analytic.messages + len(members)
        # Both layers reported through the same canonical counter.
        assert metrics.counters[metric.BOUNDING_VERIFICATIONS].value == (
            analytic.messages + report.outcome.messages
        )


class TestPipelineInstrumentation:
    def test_request_records_phase_spans_and_bounding_counters(
        self, metrics, small_dataset, small_graph, small_config
    ):
        engine = CloakingEngine(small_dataset, small_graph, small_config)
        result = engine.request(7)
        spans = metrics.spans
        assert spans[metric.SPAN_REQUEST].count == 1
        assert spans[metric.SPAN_CLUSTERING].count == 1
        assert spans[metric.SPAN_BOUNDING].count == 1
        # Phases nest inside the request span.
        assert (
            spans[metric.SPAN_CLUSTERING].total + spans[metric.SPAN_BOUNDING].total
            <= spans[metric.SPAN_REQUEST].total
        )
        counters = metrics.counters
        assert counters[metric.BOUNDING_RUNS].value == 4  # four directions
        assert counters[metric.BOUNDING_VERIFICATIONS].value == (
            result.bounding_messages
        )
        assert counters[metric.CLUSTERING_INVOLVED_USERS].value == (
            result.clustering_messages
        )

    def test_exposed_user_leak_is_counted(
        self, metrics, small_dataset, small_graph, small_config
    ):
        engine = CloakingEngine(small_dataset, small_graph, small_config)
        engine.request(7)
        counters = metrics.counters
        assert metric.BOUNDING_EXPOSED_USERS in counters
        # At most every member in each of the four directional runs.
        size = engine.clustering.registry.cluster_of(7)
        assert counters[metric.BOUNDING_EXPOSED_USERS].value <= 4 * len(size)


class TestReportCLI:
    def test_report_renders_and_validates(self, metrics, tmp_path, capsys):
        obs.inc(metric.CLOAKING_REQUESTS, 12)
        with obs.span(metric.SPAN_REQUEST):
            pass
        snapshot_path = tmp_path / "snap.json"
        obs.write_snapshot(snapshot_path)
        schema_path = tmp_path / "schema.json"
        schema_path.write_text(json.dumps(SCHEMA))
        assert (
            report_main([str(snapshot_path), "--validate", str(schema_path)])
            == 0
        )
        assert report_main([str(snapshot_path), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert metric.SPAN_REQUEST in out
        assert metric.CLOAKING_REQUESTS in out

    def test_report_rejects_invalid_snapshot(self, tmp_path, capsys):
        bad_path = tmp_path / "bad.json"
        bad_path.write_text(json.dumps({"schema": "obs/v1", "counters": {"X": 1}}))
        schema_path = tmp_path / "schema.json"
        schema_path.write_text(json.dumps(SCHEMA))
        assert (
            report_main([str(bad_path), "--validate", str(schema_path)]) == 1
        )

    def test_report_prometheus_mode(self, metrics, tmp_path, capsys):
        obs.inc(metric.CLOAKING_REQUESTS, 2)
        snapshot_path = tmp_path / "snap.json"
        obs.write_snapshot(snapshot_path)
        assert report_main([str(snapshot_path), "--prometheus"]) == 0
        assert "cloaking_requests_total 2.0" in capsys.readouterr().out

    def test_render_empty_snapshot(self):
        empty = {"schema": "obs/v1", "counters": {}, "gauges": {},
                 "histograms": {}, "spans": {}}
        assert "empty snapshot" in render(empty)
