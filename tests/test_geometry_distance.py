"""Unit tests for repro.geometry.distance."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.distance import (
    chebyshev,
    diameter,
    euclidean,
    euclidean_squared,
    manhattan,
    pairwise_euclidean,
)
from repro.geometry.point import Point

coords = st.floats(min_value=-100, max_value=100, allow_nan=False)
points = st.builds(Point, coords, coords)


def test_euclidean_345():
    assert euclidean(Point(0, 0), Point(3, 4)) == 5.0


def test_euclidean_squared():
    assert euclidean_squared(Point(0, 0), Point(3, 4)) == 25.0


def test_manhattan():
    assert manhattan(Point(1, 1), Point(-2, 5)) == 7.0


def test_chebyshev():
    assert chebyshev(Point(0, 0), Point(3, -7)) == 7.0


@given(points, points)
def test_metric_ordering(a, b):
    """Chebyshev <= Euclidean <= Manhattan for any pair."""
    assert chebyshev(a, b) <= euclidean(a, b) + 1e-9
    assert euclidean(a, b) <= manhattan(a, b) + 1e-9


def test_pairwise_matrix_matches_scalar():
    pts = [Point(0, 0), Point(1, 0), Point(0, 2)]
    matrix = pairwise_euclidean(pts)
    for i, a in enumerate(pts):
        for j, b in enumerate(pts):
            assert matrix[i, j] == pytest.approx(euclidean(a, b))


def test_pairwise_empty():
    assert pairwise_euclidean([]).shape == (0, 0)


def test_pairwise_symmetric_zero_diagonal():
    pts = [Point(0.1 * i, 0.05 * i * i) for i in range(6)]
    matrix = pairwise_euclidean(pts)
    assert np.allclose(matrix, matrix.T)
    assert np.allclose(np.diag(matrix), 0.0)


def test_diameter_small_sets():
    assert diameter([]) == 0.0
    assert diameter([Point(1, 1)]) == 0.0
    assert diameter([Point(0, 0), Point(3, 4)]) == 5.0


def test_diameter_is_max_pairwise():
    pts = [Point(0, 0), Point(1, 0), Point(0.5, 3)]
    assert diameter(pts) == pytest.approx(max(
        euclidean(a, b) for a in pts for b in pts
    ))
