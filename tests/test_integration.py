"""End-to-end integration tests: the full Fig. 3 workflow.

These tests run the entire pipeline — dataset, radio, WPG, two-phase
cloaking, LBS query — and assert the *system-level* guarantees the paper
promises, rather than any single module's behaviour.
"""

import pytest

from repro.cloaking.engine import CloakingEngine
from repro.config import SimulationConfig
from repro.datasets import california_like_poi
from repro.errors import ReproError
from repro.geometry.rect import Rect
from repro.graph.build import build_wpg
from repro.server.costs import total_request_cost
from repro.server.poidb import POIDatabase
from repro.server.queries import filter_exact_knn, range_knn_query


@pytest.fixture(scope="module")
def world():
    config = SimulationConfig(
        user_count=3000, delta=0.012, max_peers=10, k=8, request_count=40
    )
    dataset = california_like_poi(3000, seed=5)
    graph = build_wpg(dataset, config.delta, config.max_peers)
    return config, dataset, graph


@pytest.mark.parametrize("mode", ["distributed", "centralized"])
def test_full_pipeline_guarantees(world, mode):
    """Every served request yields a k-anonymous, reciprocal, covering region."""
    config, dataset, graph = world
    engine = CloakingEngine(dataset, graph, config, mode=mode, policy="secure")
    db = POIDatabase(dataset)
    served = 0
    for host in range(0, 400, 7):
        try:
            result = engine.request(host)
        except ReproError:
            continue  # host not k-clusterable at this density
        served += 1
        # k-anonymity with reciprocity.
        assert result.region.satisfies(config.k)
        assert host in result.cluster.members
        # The region covers every member's true position (correctness of
        # secure bounding) while exposing no coordinate to the protocol.
        for member in result.cluster.members:
            assert result.region.rect.contains(dataset[member])
        # The region is a sane query target.
        assert Rect.unit_square().contains_rect(result.region.rect)
        cost = total_request_cost(
            db,
            result.region.rect,
            result.clustering_messages,
            result.bounding_messages,
            config,
        )
        assert cost > 0
    assert served >= 20
    engine.clustering.registry.check_reciprocity()


def test_cluster_members_share_identical_region(world):
    """An adversary seeing requests from any two members of one cluster
    observes the same rectangle — the indistinguishability argument."""
    config, dataset, graph = world
    engine = CloakingEngine(dataset, graph, config)
    first = engine.request(0)
    regions = {engine.request(m).region.rect for m in first.cluster.members}
    assert regions == {first.region.rect}


def test_cloaked_query_end_to_end(world):
    """A member can answer its own kNN question from the candidate set."""
    config, dataset, graph = world
    engine = CloakingEngine(dataset, graph, config)
    result = engine.request(0)
    db = POIDatabase(dataset)
    candidates = range_knn_query(db, result.region.rect, 5)
    refined = filter_exact_knn(db, candidates, dataset[0], 5)
    truth = sorted(
        range(len(db)), key=lambda i: dataset[0].squared_distance_to(db.poi(i))
    )[:5]
    assert refined == truth


def test_distributed_and_centralized_regions_both_valid(world):
    """Both Fig. 3 paths produce valid (not necessarily equal) cloaks."""
    config, dataset, graph = world
    dist = CloakingEngine(dataset, graph, config, mode="distributed")
    cent = CloakingEngine(dataset, graph, config, mode="centralized")
    a = dist.request(10)
    b = cent.request(10)
    for result in (a, b):
        assert result.region.satisfies(config.k)
        assert dataset[10].x <= result.region.rect.x_max


def test_message_level_equals_analytic_pipeline(world):
    """The message-level protocol stack reproduces the analytic phase 1."""
    from repro.clustering.distributed import DistributedClustering
    from repro.clustering.protocol import P2PClusteringProtocol
    from repro.network.node import populate_network
    from repro.network.simulator import PeerNetwork

    config, dataset, graph = world
    net = PeerNetwork()
    populate_network(net, graph, list(dataset.points))
    analytic = DistributedClustering(graph, config.k)
    wire = P2PClusteringProtocol(net, graph, config.k)
    for host in (0, 33, 101):
        try:
            expected = analytic.request(host)
        except ReproError:
            continue
        got = wire.request(host)
        assert got.result.members == expected.members
        assert got.adjacency_fetches == expected.involved
