"""Tests for stats summaries and report formatting."""

import math

from repro.analysis.reporting import format_series, format_table
from repro.analysis.stats import Summary, summarize


class TestSummarize:
    def test_empty(self):
        summary = summarize([])
        assert summary.count == 0
        assert math.isnan(summary.mean)

    def test_single(self):
        summary = summarize([3.0])
        assert summary == Summary(1, 3.0, 3.0, 3.0, 3.0, 0.0)

    def test_even_median(self):
        assert summarize([1.0, 2.0, 3.0, 4.0]).median == 2.5

    def test_odd_median(self):
        assert summarize([5.0, 1.0, 3.0]).median == 3.0

    def test_stddev(self):
        summary = summarize([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert summary.stddev == 2.0  # classic population-stddev example

    def test_min_max(self):
        summary = summarize([3.0, -1.0, 7.0])
        assert summary.minimum == -1.0
        assert summary.maximum == 7.0


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert set(lines[1].replace("  ", "")) == {"-"}
        # Right-justified columns line up.
        assert lines[0].index("value") == lines[2].index("1") - 4

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_float_formatting(self):
        text = format_table(["x"], [[1.23456e-7], [123456.7], [0.0]])
        assert "1.235e-07" in text
        assert "1.235e+05" in text
        assert " 0" in text


class TestFormatSeries:
    def test_series_columns(self):
        text = format_series(
            "k", [5, 10], {"alpha": [1.0, 2.0], "beta": [3.0, 4.0]}, title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "alpha" in lines[1]
        assert "beta" in lines[1]
        assert len(lines) == 5

    def test_no_title(self):
        text = format_series("k", [1], {"s": [2]})
        assert not text.startswith("\n")
