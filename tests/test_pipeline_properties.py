"""System-level properties over realistic (dataset-built) WPGs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.centralized import greedy_partition, strict_partition
from repro.cloaking.engine import CloakingEngine
from repro.config import SimulationConfig
from repro.datasets import gaussian_clusters, uniform_points
from repro.errors import ReproError
from repro.graph.build import build_wpg
from repro.graph.components import connected_components


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 100),
    k=st.integers(2, 8),
    clustered=st.booleans(),
)
def test_property_partition_valid_on_dataset_wpgs(seed, k, clustered):
    """Algorithm 1 stays correct on WPGs built from real-ish geometry.

    Both semantics must produce complete, disjoint partitions whose
    invalid pieces are exactly the undersized connected components.
    """
    dataset = (
        gaussian_clusters(300, clusters=5, spread=0.05, seed=seed)
        if clustered
        else uniform_points(300, seed=seed)
    )
    graph = build_wpg(dataset, delta=0.08, max_peers=6)
    undersized = {
        frozenset(c)
        for c in connected_components(graph)
        if len(c) < k
    }
    for semantics in (strict_partition, greedy_partition):
        partition = semantics(graph, k)
        partition.validate()
        assert partition.covered == graph.vertex_count
        assert {frozenset(p) for p in partition.invalid} == undersized


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 50))
def test_property_engine_is_deterministic(seed):
    """Two engines over the same world serve identical results.

    Determinism is what makes every number in EXPERIMENTS.md
    reproducible; any hidden iteration-order dependence breaks it.
    """
    dataset = uniform_points(250, seed=seed)
    config = SimulationConfig(
        user_count=250, delta=0.12, max_peers=6, k=5, request_count=10
    )
    graph = build_wpg(dataset, config.delta, config.max_peers)

    def serve():
        engine = CloakingEngine(dataset, graph, config, policy="secure")
        results = []
        for host in range(0, 250, 17):
            try:
                outcome = engine.request(host)
            except ReproError:
                results.append(None)
                continue
            results.append(
                (
                    outcome.cluster.members,
                    outcome.region.rect,
                    outcome.clustering_messages,
                    outcome.bounding_messages,
                )
            )
        return results

    assert serve() == serve()


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 50), k=st.integers(3, 8))
def test_property_greedy_never_worse_count_than_strict(seed, k):
    """Greedy refines strict, so it never produces fewer clusters."""
    dataset = gaussian_clusters(250, clusters=4, spread=0.04, seed=seed)
    graph = build_wpg(dataset, delta=0.1, max_peers=6)
    strict = strict_partition(graph, k)
    greedy = greedy_partition(graph, k)
    assert len(greedy.clusters) >= len(strict.clusters)
    # And all its valid clusters stay within [k, a small multiple of k).
    assert all(k <= len(c) for c in greedy.clusters)


def test_cross_metric_consistency():
    """Clustering cost and region metrics agree between harness and engine."""
    from repro.experiments.harness import ExperimentSetup, run_clustering_workload
    from repro.experiments.workloads import sample_hosts

    setup = ExperimentSetup.paper_default(users=3000, requests=40)
    config = setup.base_config
    graph = setup.graph(config)
    hosts = sample_hosts(graph, config.k, 40, seed=3)
    workload = run_clustering_workload(
        setup, "t-conn", config, hosts, graph=graph
    )

    engine = CloakingEngine(setup.dataset, graph, config, policy="optimal")
    total_cost = 0
    areas = []
    for host in hosts:
        try:
            result = engine.request(host)
        except ReproError:
            continue
        total_cost += result.clustering_messages
        areas.append(result.region.area)
    assert total_cost == sum(workload.per_request_costs)
    assert sum(areas) == pytest.approx(sum(workload.per_request_areas))
