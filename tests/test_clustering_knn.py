"""Tests for the kNN baseline and the revised tie-break variant."""

import pytest

from repro.clustering.base import ClusterRegistry
from repro.clustering.knn import KNNClustering, revised_knn_cluster
from repro.errors import ClusteringError, ConfigurationError
from repro.graph.wpg import WeightedProximityGraph


@pytest.fixture()
def fig4_graph():
    """A 6-vertex WPG in the spirit of the paper's Fig. 4.

    u4 (vertex 3) has direct neighbours u3 (vertex 2, weight 1), u5
    (vertex 4, weight 1) and u6 (vertex 5, weight 2); u5-u6 share a
    weight-1 edge; u1-u2-u3 chain on the left.
    """
    g = WeightedProximityGraph()
    g.add_edge(0, 1, 1.0)   # u1-u2
    g.add_edge(1, 2, 2.0)   # u2-u3
    g.add_edge(0, 2, 2.0)   # u1-u3
    g.add_edge(2, 3, 1.0)   # u3-u4
    g.add_edge(3, 4, 1.0)   # u4-u5
    g.add_edge(3, 5, 2.0)   # u4-u6
    g.add_edge(4, 5, 1.0)   # u5-u6
    return g


class TestPlainKNN:
    def test_greedy_expansion_from_host(self, fig4_graph):
        """Plain kNN takes the min-weight frontier edges, id ties first.

        From u4 (vertex 3): frontier weights are u3=1, u5=1, u6=2; the
        id tie-break picks u3 then u5 — the paper's Fig. 4(a) outcome.
        """
        algo = KNNClustering(fig4_graph, 3)
        result = algo.request(3)
        assert result.members == frozenset({2, 3, 4})

    def test_cost_members_mode(self, fig4_graph):
        algo = KNNClustering(fig4_graph, 3, cost_mode="members")
        assert algo.request(3).involved == 2

    def test_cost_explored_mode(self, fig4_graph):
        algo = KNNClustering(fig4_graph, 3, cost_mode="explored")
        assert algo.request(3).involved >= 2

    def test_cached_request(self, fig4_graph):
        algo = KNNClustering(fig4_graph, 3)
        algo.request(3)
        again = algo.request(2)
        assert again.from_cache
        assert again.involved == 0

    def test_depleted_neighbourhood_spans_farther(self, fig4_graph):
        """After {2,3,4} cluster, host 5 must recruit across the graph."""
        algo = KNNClustering(fig4_graph, 3)
        algo.request(3)
        result = algo.request(5)
        assert result.members == frozenset({5, 0, 1})

    def test_not_enough_users_raises(self, fig4_graph):
        algo = KNNClustering(fig4_graph, 3)
        algo.request(3)  # consumes {2,3,4}
        algo.request(5)  # consumes {5,0,1}
        # Everyone clustered; a fresh graph vertex would be needed.
        assert algo.registry.assigned_count == 6

    def test_removal_traversal_fails_when_cut_off(self):
        """With removal semantics, a walled-off host fails cleanly."""
        g = WeightedProximityGraph()
        # Line: 0-1-2-3-4; cluster {1,2} walls 0 off from 3,4.
        for i in range(4):
            g.add_edge(i, i + 1, 1.0)
        registry = ClusterRegistry()
        registry.register({1, 2})
        algo = KNNClustering(g, 2, registry=registry, traversal="removal")
        with pytest.raises(ClusteringError):
            algo.request(0)

    def test_relay_traversal_crosses_clustered_users(self):
        g = WeightedProximityGraph()
        for i in range(4):
            g.add_edge(i, i + 1, 1.0)
        registry = ClusterRegistry()
        registry.register({1, 2})
        algo = KNNClustering(g, 2, registry=registry, traversal="relay")
        result = algo.request(0)
        assert result.members == frozenset({0, 3})

    def test_validation(self, fig4_graph):
        with pytest.raises(ConfigurationError):
            KNNClustering(fig4_graph, 0)
        with pytest.raises(ConfigurationError):
            KNNClustering(fig4_graph, 2, cost_mode="bananas")  # type: ignore[arg-type]
        with pytest.raises(ConfigurationError):
            KNNClustering(fig4_graph, 2, traversal="teleport")  # type: ignore[arg-type]
        with pytest.raises(ClusteringError):
            KNNClustering(fig4_graph, 2).request(99)

    def test_reciprocity_maintained(self, small_graph, small_config):
        algo = KNNClustering(small_graph, small_config.k)
        for host in range(0, 60, 7):
            try:
                algo.request(host)
            except ClusteringError:
                continue
        algo.registry.check_reciprocity()

    def test_every_cluster_exactly_k(self, small_graph, small_config):
        """Fresh kNN clusters have exactly k members, never more."""
        algo = KNNClustering(small_graph, small_config.k)
        for host in range(0, 30, 5):
            result = algo.request(host)
            if not result.from_cache:
                assert result.size == small_config.k


class TestRevisedKNN:
    def test_degree_tie_break(self, fig4_graph):
        """Fig. 4(b): at equal weight, the smaller-degree vertex wins.

        From u4: u3 (degree 3) and u5 (degree 2) tie at weight 1 — the
        revised variant picks u5 first, then u6 joins through the
        weight-1 edge (u5, u6), giving {u4, u5, u6}.
        """
        assert revised_knn_cluster(fig4_graph, 3, 3) == {3, 4, 5}

    def test_matches_paper_counterexample(self, fig4_graph):
        """Raising (u4, u6) to weight 3 changes nothing for the revised
        variant here (u6 still enters through u5); the *plain* algorithm
        keeps {u3, u4, u5} either way."""
        algo = KNNClustering(fig4_graph, 3)
        assert algo.request(3).members == frozenset({2, 3, 4})

    def test_validation(self, fig4_graph):
        with pytest.raises(ConfigurationError):
            revised_knn_cluster(fig4_graph, 3, 0)
        with pytest.raises(ClusteringError):
            revised_knn_cluster(fig4_graph, 99, 2)

    def test_too_small_component_raises(self):
        g = WeightedProximityGraph.from_edges([(0, 1, 1.0)])
        with pytest.raises(ClusteringError):
            revised_knn_cluster(g, 0, 3)

    def test_contains_host_and_k_members(self, small_graph):
        cluster = revised_knn_cluster(small_graph, 5, 6)
        assert 5 in cluster
        assert len(cluster) == 6
