"""Property-based cross-check of the spatial indexes against brute force.

Three independent implementations answer the same queries: the cell grid,
the kd-tree, and a linear scan written here from the definitions.  On any
random population they must agree exactly — the indexes use the same
``squared_distance <= r^2`` inclusion rule as the scan, so equality is
bitwise, not approximate.  Nearest-neighbor queries compare distance
multisets (id order may legitimately differ under exact ties).
"""

from __future__ import annotations

import math

from hypothesis import given, strategies as st

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.spatial.grid import GridIndex
from repro.spatial.kdtree import KDTree
from repro.spatial.neighbors import NeighborFinder

coordinate = st.floats(0.0, 1.0, allow_nan=False, width=32)
points_strategy = st.lists(
    st.tuples(coordinate, coordinate), min_size=1, max_size=40
).map(lambda pairs: [Point(x, y) for x, y in pairs])


def _scan_radius(points, center: Point, radius: float) -> set[int]:
    r2 = radius * radius
    return {
        i for i, p in enumerate(points) if center.squared_distance_to(p) <= r2
    }


def _scan_rect(points, rect: Rect) -> set[int]:
    return {i for i, p in enumerate(points) if rect.contains(p)}


def _scan_nearest(points, center: Point, count: int, max_radius=None):
    limit = math.inf if max_radius is None else max_radius
    eligible = sorted(
        (center.squared_distance_to(p), i)
        for i, p in enumerate(points)
        if center.squared_distance_to(p) <= limit * limit
    )
    return eligible[:count]


@given(points_strategy, coordinate, coordinate, st.floats(0.0, 0.7, allow_nan=False))
def test_query_radius_three_way(points, cx, cy, radius):
    center = Point(cx, cy)
    expected = _scan_radius(points, center, radius)
    grid = GridIndex(points, cell_size=0.13)
    tree = KDTree(points)
    assert set(grid.query_radius(center, radius)) == expected
    assert set(tree.query_radius(center, radius)) == expected


@given(points_strategy, coordinate, coordinate, coordinate, coordinate)
def test_query_rect_three_way(points, x1, x2, y1, y2):
    rect = Rect(min(x1, x2), max(x1, x2), min(y1, y2), max(y1, y2))
    expected = _scan_rect(points, rect)
    grid = GridIndex(points, cell_size=0.13)
    tree = KDTree(points)
    assert set(grid.query_rect(rect)) == expected
    assert set(tree.query_rect(rect)) == expected
    assert grid.count_rect(rect) == len(expected)


@given(
    points_strategy,
    coordinate,
    coordinate,
    st.integers(1, 8),
    st.one_of(st.none(), st.floats(0.05, 0.9, allow_nan=False)),
)
def test_nearest_neighbors_three_way(points, cx, cy, count, max_radius):
    center = Point(cx, cy)
    expected = _scan_nearest(points, center, count, max_radius)
    expected_d2 = [d2 for d2, _ in expected]
    for index in (GridIndex(points, cell_size=0.13), KDTree(points)):
        got = index.nearest_neighbors(center, count, max_radius=max_radius)
        got_d2 = [center.squared_distance_to(points[i]) for i in got]
        assert len(got) == len(expected)
        assert got_d2 == sorted(got_d2)  # nearest first
        assert got_d2 == expected_d2  # same distances, ties aside


@given(points_strategy, st.floats(0.02, 0.4, allow_nan=False))
def test_neighbor_finder_backends_agree(points, delta):
    grid = NeighborFinder(points, kind="grid", cell_size=delta)
    tree = NeighborFinder(points, kind="kdtree")
    for user in range(len(points)):
        expected = _scan_radius(points, points[user], delta) - {user}
        assert set(grid.peers_in_range(user, delta)) == expected
        assert set(tree.peers_in_range(user, delta)) == expected


@given(points_strategy, st.floats(0.02, 0.4, allow_nan=False))
def test_batch_peers_matches_scalar(points, delta):
    finder = NeighborFinder(points, kind="grid", cell_size=delta)
    indptr, peers = finder.batch_peers_in_range(delta)
    assert indptr[0] == 0 and indptr[-1] == len(peers)
    for user in range(len(points)):
        batch = set(int(p) for p in peers[indptr[user] : indptr[user + 1]])
        assert batch == set(finder.peers_in_range(user, delta))
