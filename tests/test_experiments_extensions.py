"""Tests for the extension experiments and the CLI entry point."""

import pytest

from repro.experiments.harness import ExperimentSetup
from repro.experiments.privacy_tradeoff import run_privacy_tradeoff
from repro.experiments.robustness import run_robustness


@pytest.fixture(scope="module")
def setup():
    return ExperimentSetup.paper_default(users=3000, requests=40)


class TestRobustness:
    def test_noise_free_baseline_first(self, setup):
        result = run_robustness(setup, sigmas=(0.0, 6.0), requests=40)
        assert result.sigmas == (0.0, 6.0)
        assert len(result.workloads) == 2
        series = result.series()
        assert all(len(v) == 2 for v in series.values())

    def test_graceful_degradation(self, setup):
        result = run_robustness(setup, sigmas=(0.0, 4.0), requests=40)
        areas = result.series()["avg cloaked size"]
        # Noisy rankings should stay within a small factor of noise-free.
        assert areas[1] < 3 * areas[0]

    def test_format(self, setup):
        text = run_robustness(setup, sigmas=(0.0,), requests=20).format()
        assert "shadowing" in text.lower()


class TestPrivacyTradeoff:
    def test_monotone_tradeoff(self, setup):
        result = run_privacy_tradeoff(
            setup, floors=(0.0, 1e-3, 4e-3), requests=30
        )
        leaks = [row.worst_leak_bits for row in result.rows]
        ratios = [row.avg_request_ratio for row in result.rows]
        assert leaks == sorted(leaks, reverse=True)
        assert ratios[-1] >= ratios[0] - 1e-9

    def test_floor_guarantee(self, setup):
        result = run_privacy_tradeoff(setup, floors=(2e-3,), requests=30)
        (row,) = result.rows
        assert row.mean_interval >= 2e-3 - 1e-12

    def test_format(self, setup):
        text = run_privacy_tradeoff(setup, floors=(0.0,), requests=20).format()
        assert "Privacy floor" in text


class TestCLI:
    def test_single_experiment(self, capsys):
        from repro.experiments.__main__ import main

        code = main(["--users", "2500", "--requests", "25", "--only", "table1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "2500" in out

    def test_fig_runner_through_cli(self, capsys):
        from repro.experiments.__main__ import main

        code = main(["--users", "2500", "--requests", "25", "--only", "fig10"])
        assert code == 0
        assert "Fig 10" in capsys.readouterr().out

    def test_rejects_unknown_experiment(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["--only", "fig99"])
