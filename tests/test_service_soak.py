"""Service soak: 200+ interleaved churn ticks and cloak requests.

One long deterministic session against a 4-shard fleet, checked three
ways:

* **no stale answers** — every single request and batch is compared on
  the spot against a lock-step single-process reference, so a cached
  region that survived a boundary-crossing move (or a registration that
  failed to reach the component's new owner) surfaces at the exact op
  that exposes it, not as a fuzzy end-of-run diff;
* **graph stitching** — after the dust settles, the union of the
  per-shard geometric views (every edge incident to a slab-owned user)
  must rebuild the full WPG `graph_equality_details`-equal to a
  from-scratch build over the final positions, and every worker's
  δ-halo invariant must hold (no edge leaves a slab by more than one
  tile);
* **obs reconciliation** — the dispatcher's merged fleet snapshot must
  agree with its own counters: every request the dispatcher admitted is
  accounted for by exactly one worker, every churn tick by all of them.
"""

from __future__ import annotations

import random

from repro import obs
from repro.geometry.point import Point
from repro.graph.build import build_wpg_fast
from repro.graph.wpg import WeightedProximityGraph
from repro.obs import names as metric
from repro.service import CloakingService, ServiceSpec, build_engine
from repro.service.spec import materialize
from repro.service.worker import outcome_of, outcomes_of
from repro.verify.invariants import graph_equality_details

USERS = 280
SHARDS = 4
OPS = 220


def _script(rng: random.Random) -> list[tuple[str, object]]:
    """A seeded interleaving of single requests, batches, and churn."""
    ops: list[tuple[str, object]] = []
    for index in range(OPS):
        roll = index % 11
        if roll == 7:
            movers = rng.sample(range(USERS), rng.randint(3, 9))
            # Uniform destinations cross slab boundaries constantly —
            # the interesting case for halo refresh and rerouting.
            ops.append(
                ("churn", [(u, rng.random(), rng.random()) for u in movers])
            )
        elif roll == 5:
            ops.append(("batch", rng.sample(range(USERS), rng.randint(2, 6))))
        else:
            ops.append(("request", rng.randrange(USERS)))
    return ops


def test_soak_interleaved_churn_and_requests():
    spec = ServiceSpec.synthetic(
        users=USERS, seed=17, kind="uniform", delta=0.06, k=4,
        shards=SHARDS, obs=True,
    )
    reference = build_engine(spec)
    ops = _script(random.Random(2009))
    churn_ticks = sum(1 for kind, _ in ops if kind == "churn")
    assert churn_ticks >= 15

    obs.disable()
    obs.reset()
    try:
        with CloakingService(spec) as service:
            requests_issued = 0
            for step, (kind, arg) in enumerate(ops):
                if kind == "request":
                    got = service.request(arg)
                    expected = outcome_of(reference, arg)
                    assert got == expected, f"op {step}: request({arg}) diverged"
                    requests_issued += 1
                elif kind == "batch":
                    got_batch = service.request_many(arg)
                    expected_batch = outcomes_of(reference, arg)
                    assert got_batch == expected_batch, (
                        f"op {step}: request_many({arg}) diverged"
                    )
                    requests_issued += len(arg)
                else:
                    summary = service.apply_moves(arg)
                    reference.apply_moves(
                        [(u, Point(x, y)) for u, x, y in arg]
                    )
                    assert summary["moved"] == len(arg)

            # -- end state: registry and regions ---------------------------------
            assert service.registry_clusters() == set(
                reference.clustering.registry.clusters()
            )
            assert service.cached_regions() == {
                members: (region.rect, region.anonymity)
                for members, region in reference.cached_regions().items()
            }

            # -- end state: per-shard graphs stitch back together ----------------
            views = service.shard_graph_views()
            assert all(view["halo_ok"] for view in views), [
                view["violations"] for view in views
            ]
            assert sum(view["geometric_owned"] for view in views) == USERS
            stitched_edges = {
                (u, v): w for view in views for u, v, w in view["edges"]
            }
            stitched = WeightedProximityGraph.from_edges(
                ((u, v, w) for (u, v), w in stitched_edges.items()),
                vertices=range(USERS),
            )
            dataset, _, config = materialize(spec)
            for kind, arg in ops:
                if kind == "churn":
                    for user, x, y in arg:
                        dataset.move(user, Point(x, y))
            scratch = build_wpg_fast(dataset, config.delta, config.max_peers)
            assert graph_equality_details(stitched, scratch, "stitched", "scratch") == []
            # The incrementally-patched reference agrees too, closing the loop.
            assert graph_equality_details(reference.graph, scratch, "ref", "scratch") == []

            # -- obs: fleet counters reconcile across processes ------------------
            merged = service.obs_snapshot()
            stats = service.worker_stats()
    finally:
        obs.disable()
        obs.reset()

    counters = merged["counters"]
    # Every admitted request was served by exactly one worker.
    assert counters[metric.SERVICE_REQUESTS] == requests_issued
    assert counters[metric.SERVICE_WORKER_REQUESTS] == requests_issued
    assert counters[metric.CLUSTERING_REQUESTS] >= requests_issued
    # Worker-side op tallies agree with the merged snapshot's view.
    assert sum(s["ops"].get("request", 0) for s in stats) == sum(
        1 for kind, _ in ops if kind == "request"
    )
    assert counters[metric.SERVICE_CHURN_TICKS] == churn_ticks
    # Every worker consumed every tick (broadcast barrier).
    assert all(s["ops"].get("churn", 0) == churn_ticks for s in stats)
    # The merged counter carries each halo refresh twice — once from the
    # dispatcher's fleet total, once from the worker that consumed it —
    # so halving it must land exactly on the workers' own tallies.
    worker_halo = sum(s["halo_refreshes"] for s in stats)
    assert counters.get(metric.SERVICE_HALO_REFRESHES, 0) == 2 * worker_halo
    # After the final sync every replica holds every cluster.
    assert {s["clusters"] for s in stats} == {
        len(reference.clustering.registry)
    }


def test_soak_worker_busy_meters_accumulate():
    spec = ServiceSpec.synthetic(
        users=120, seed=5, kind="uniform", delta=0.08, k=3, shards=2
    )
    with CloakingService(spec) as service:
        for host in range(0, 120, 7):
            service.request(host)
        stats = service.worker_stats()
        assert all(s["busy_wall"] > 0.0 for s in stats)
        served = sum(s["ops"].get("request", 0) for s in stats)
        assert served == len(range(0, 120, 7))
        service.reset_worker_stats()
        stats = service.worker_stats()
        assert all(s["ops"].get("request", 0) == 0 for s in stats)
