"""Tests for the cloaked region, anonymizer and two-phase engine."""

import pytest

from repro.cloaking.anonymizer import CentralizedAnonymizer
from repro.cloaking.engine import CloakingEngine
from repro.cloaking.region import CloakedRegion
from repro.clustering.centralized import centralized_k_clustering
from repro.errors import ClusteringError, ConfigurationError
from repro.geometry.rect import Rect
from repro.graph.wpg import WeightedProximityGraph


class TestCloakedRegion:
    def test_area_and_satisfies(self):
        region = CloakedRegion(Rect(0.0, 0.2, 0.0, 0.1), cluster_id=0, anonymity=12)
        assert region.area == pytest.approx(0.02)
        assert region.satisfies(10)
        assert not region.satisfies(13)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CloakedRegion(Rect.unit_square(), cluster_id=0, anonymity=0)


class TestCentralizedAnonymizer:
    def test_first_request_pays_for_all(self, two_blobs_graph):
        anonymizer = CentralizedAnonymizer(two_blobs_graph, 4)
        first = anonymizer.request(0)
        assert first.involved == two_blobs_graph.vertex_count - 1
        assert first.members == frozenset({0, 1, 2, 3})

    def test_subsequent_requests_free(self, two_blobs_graph):
        anonymizer = CentralizedAnonymizer(two_blobs_graph, 4)
        anonymizer.request(0)
        later = anonymizer.request(5)
        assert later.involved == 0
        assert later.from_cache
        assert later.members == frozenset({4, 5, 6, 7})

    def test_unclusterable_host_raises(self):
        g = WeightedProximityGraph.from_edges([(0, 1, 1.0)], vertices=[2])
        anonymizer = CentralizedAnonymizer(g, 2)
        anonymizer.request(0)
        with pytest.raises(ClusteringError):
            anonymizer.request(2)
        assert anonymizer.unclusterable == frozenset({2})

    def test_precomputed_partition_used(self, two_blobs_graph):
        partition = centralized_k_clustering(two_blobs_graph, 4)
        anonymizer = CentralizedAnonymizer(two_blobs_graph, 4, precomputed=partition)
        assert anonymizer.request(0).members == frozenset({0, 1, 2, 3})

    def test_precomputed_wrong_k_rejected(self, two_blobs_graph):
        partition = centralized_k_clustering(two_blobs_graph, 4)
        with pytest.raises(ConfigurationError):
            CentralizedAnonymizer(two_blobs_graph, 5, precomputed=partition)

    def test_unknown_host(self, two_blobs_graph):
        with pytest.raises(ClusteringError):
            CentralizedAnonymizer(two_blobs_graph, 4).request(99)


class TestCloakingEngine:
    @pytest.fixture(params=["distributed", "centralized"])
    def engine(self, request, small_dataset, small_graph, small_config):
        return CloakingEngine(
            small_dataset, small_graph, small_config, mode=request.param
        )

    def test_region_contains_all_members(self, engine, small_dataset):
        result = engine.request(0)
        for member in result.cluster.members:
            assert result.region.rect.contains(small_dataset[member])

    def test_k_anonymity_satisfied(self, engine, small_config):
        result = engine.request(0)
        assert result.region.satisfies(small_config.k)

    def test_region_reused_across_cluster(self, engine):
        first = engine.request(0)
        member = next(iter(first.cluster.members - {0}))
        second = engine.request(member)
        assert second.region_from_cache
        assert second.region.rect == first.region.rect
        assert second.bounding_messages == 0

    def test_region_inside_unit_square(self, engine):
        result = engine.request(0)
        assert Rect.unit_square().contains_rect(result.region.rect)

    def test_total_phase_messages(self, engine):
        result = engine.request(0)
        assert result.total_phase_messages == (
            result.clustering_messages + result.bounding_messages
        )

    def test_optimal_policy_tight_regions(
        self, small_dataset, small_graph, small_config
    ):
        secure = CloakingEngine(
            small_dataset, small_graph, small_config, policy="secure"
        )
        optimal = CloakingEngine(
            small_dataset, small_graph, small_config, policy="optimal"
        )
        a = secure.request(0)
        b = optimal.request(0)
        assert a.cluster.members == b.cluster.members
        assert a.region.area >= b.region.area

    def test_custom_policy_builder(self, small_dataset, small_graph, small_config):
        from repro.bounding.policies import LinearPolicy

        engine = CloakingEngine(
            small_dataset,
            small_graph,
            small_config,
            policy=lambda size: LinearPolicy(0.01),
        )
        result = engine.request(0)
        assert result.bounding_messages > 0

    def test_mismatched_sizes_rejected(self, small_dataset, small_config):
        with pytest.raises(ConfigurationError):
            CloakingEngine(
                small_dataset, WeightedProximityGraph(), small_config
            )

    def test_unknown_mode_rejected(self, small_dataset, small_graph, small_config):
        with pytest.raises(ConfigurationError):
            CloakingEngine(
                small_dataset, small_graph, small_config, mode="quantum"  # type: ignore[arg-type]
            )

    def test_regions_cached_counter(self, engine):
        assert engine.regions_cached == 0
        engine.request(0)
        assert engine.regions_cached == 1


class TestHostRoleBounding:
    def test_bounding_seeded_at_requesting_host(
        self, small_dataset, small_graph, small_config
    ):
        """Secure bounding must start from the requester, not member 0.

        The progressive protocol seeds all four directional runs at the
        host's own coordinate; a host that is not the smallest member id
        therefore produces a different (still correct) region than the
        smallest member would.  Regression for the engine passing
        ``host_index=0`` unconditionally.
        """
        from repro.bounding.boxing import secure_bounding_box
        from repro.bounding.presets import paper_policy

        engine = CloakingEngine(
            small_dataset, small_graph, small_config, policy="linear"
        )
        first = engine.request(0)
        members = first.cluster.members
        host = max(members)
        assert host != min(members)
        # Drop the cached region so the new host re-runs phase 2.
        assert engine.invalidate_region(members)
        result = engine.request(host)

        ordered = sorted(members)
        points = [small_dataset[i] for i in ordered]
        size = len(points)
        expected = secure_bounding_box(
            points,
            host_index=ordered.index(host),
            policy_factory=lambda: paper_policy("linear", size, small_config),
            clip_to=Rect.unit_square(),
        )
        assert result.region.rect == expected.region
        # Sanity: the old behaviour (always member 0) gives a different
        # region here, so this test genuinely discriminates.
        wrong = secure_bounding_box(
            points,
            host_index=0,
            policy_factory=lambda: paper_policy("linear", size, small_config),
            clip_to=Rect.unit_square(),
        )
        assert expected.region != wrong.region

    def test_host_region_still_covers_cluster(
        self, small_dataset, small_graph, small_config
    ):
        engine = CloakingEngine(
            small_dataset, small_graph, small_config, policy="secure"
        )
        first = engine.request(0)
        host = max(first.cluster.members)
        engine.invalidate_region(first.cluster.members)
        result = engine.request(host)
        for member in result.cluster.members:
            assert result.region.rect.contains(small_dataset[member])


class TestRegionInvalidation:
    def test_invalidate_forces_rebound(
        self, small_dataset, small_graph, small_config
    ):
        engine = CloakingEngine(small_dataset, small_graph, small_config)
        first = engine.request(0)
        members = first.cluster.members
        assert engine.regions_cached == 1
        assert engine.invalidate_region(members)
        assert engine.regions_cached == 0
        # Second invalidation of the same cluster is a no-op.
        assert not engine.invalidate_region(members)
        rebuilt = engine.request(0)
        assert not rebuilt.region_from_cache
        assert rebuilt.bounding_messages > 0
        # Region ids stay unique across invalidations.
        assert rebuilt.region.cluster_id != first.region.cluster_id

    def test_invalidate_accepts_any_iterable(
        self, small_dataset, small_graph, small_config
    ):
        engine = CloakingEngine(small_dataset, small_graph, small_config)
        members = engine.request(0).cluster.members
        assert engine.invalidate_region(sorted(members))

    def test_clear_regions(self, small_dataset, small_graph, small_config):
        engine = CloakingEngine(small_dataset, small_graph, small_config)
        engine.request(0)
        hosts = [h for h in range(1, 50) if h not in engine.request(0).cluster.members]
        engine.request(hosts[0])
        count = engine.regions_cached
        assert count >= 2
        assert engine.clear_regions() == count
        assert engine.regions_cached == 0
        assert engine.clear_regions() == 0


class TestCustomClusteringService:
    def test_engine_with_hilbert_asr(self, small_dataset, small_graph, small_config):
        """The engine accepts any phase-1 service, e.g. the hilbASR baseline."""
        from repro.clustering.hilbert_asr import HilbertASRClustering

        service = HilbertASRClustering(small_dataset, small_config.k)
        engine = CloakingEngine(
            small_dataset, small_graph, small_config, clustering=service
        )
        result = engine.request(0)
        assert result.region.satisfies(small_config.k)
        for member in result.cluster.members:
            assert result.region.rect.contains(small_dataset[member])
        # hilbASR buckets everyone on the first request.
        assert service.registry.assigned_count == len(small_dataset)


class TestGranularity:
    def test_min_area_enforced(self, small_dataset, small_graph, small_config):
        engine = CloakingEngine(
            small_dataset, small_graph, small_config, min_area=0.02
        )
        result = engine.request(0)
        assert result.region.area >= 0.02 - 1e-12
        # Still k-anonymous and still covering every member.
        assert result.region.satisfies(small_config.k)
        for member in result.cluster.members:
            assert result.region.rect.contains(small_dataset[member])

    def test_min_area_zero_is_noop(self, small_dataset, small_graph, small_config):
        plain = CloakingEngine(small_dataset, small_graph, small_config)
        explicit = CloakingEngine(
            small_dataset, small_graph, small_config, min_area=0.0
        )
        assert plain.request(0).region.rect == explicit.request(0).region.rect

    def test_min_area_at_map_corner(self, small_config):
        """Granularity growth handles clipping at the unit-square edge."""
        from repro.datasets.base import PointDataset
        from repro.geometry.point import Point
        from repro.graph.build import build_wpg

        corner_users = PointDataset(
            [Point(0.001 + 0.002 * i, 0.001 + 0.001 * (i % 3)) for i in range(30)]
        )
        graph = build_wpg(corner_users, delta=0.05, max_peers=8)
        config = small_config.with_overrides(user_count=30, k=5)
        engine = CloakingEngine(corner_users, graph, config, min_area=0.05)
        result = engine.request(0)
        assert result.region.area >= 0.05 - 1e-9
        assert Rect.unit_square().contains_rect(result.region.rect)

    def test_min_area_validation(self, small_dataset, small_graph, small_config):
        with pytest.raises(ConfigurationError):
            CloakingEngine(
                small_dataset, small_graph, small_config, min_area=-0.1
            )
        with pytest.raises(ConfigurationError):
            CloakingEngine(
                small_dataset, small_graph, small_config, min_area=1.5
            )
