"""Unit and metamorphic tests for the fault-tolerant protocol runtime."""

import numpy as np
import pytest

from repro import obs
from repro.cloaking.engine import CloakingEngine
from repro.cloaking.p2p_engine import P2PCloakingSession
from repro.config import SimulationConfig
from repro.datasets import uniform_points
from repro.errors import ConfigurationError, ProtocolError
from repro.graph.build import build_wpg
from repro.network.failures import FailurePlan
from repro.network.node import populate_network
from repro.network.reliability import (
    ABORT_BELOW_K,
    ABORT_REASONS,
    ProtocolAbort,
    ReliabilityPolicy,
    ReliableTransport,
    abort,
    resolve,
)
from repro.network.simulator import MessageDropped, PeerCrashed, PeerNetwork
from repro.obs import names as metric
from repro.obs.registry import MetricsRegistry


@pytest.fixture(scope="module")
def world():
    ds = uniform_points(300, seed=21)
    graph = build_wpg(ds, delta=0.09, max_peers=8)
    return ds, graph


def _populated(world, plan=None):
    ds, graph = world
    net = PeerNetwork(plan)
    devices = populate_network(net, graph, list(ds.points))
    return net, devices


class TestReliabilityPolicy:
    def test_defaults_enabled_off_disabled(self):
        assert ReliabilityPolicy().enabled
        assert not ReliabilityPolicy.off().enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": 0.0},
            {"base_delay": 2.0, "max_delay": 1.0},
            {"backoff_factor": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
            {"crash_after": 0},
            {"max_reforms": -1},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ReliabilityPolicy(**kwargs)

    def test_delay_is_capped_exponential(self):
        policy = ReliabilityPolicy(
            base_delay=0.1, backoff_factor=2.0, max_delay=0.5, jitter=0.0
        )
        rng = np.random.default_rng(0)
        delays = [policy.delay(i, rng) for i in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = ReliabilityPolicy(base_delay=0.1, jitter=0.2)
        first = [policy.delay(i, np.random.default_rng(3)) for i in range(4)]
        second = [policy.delay(i, np.random.default_rng(3)) for i in range(4)]
        assert first == second
        for attempt, delay in enumerate(first):
            raw = min(0.1 * 2.0**attempt, policy.max_delay)
            assert abs(delay - raw) <= 0.2 * raw

    def test_resolve_maps_off_to_none(self):
        enabled = ReliabilityPolicy()
        assert resolve(enabled) is enabled
        assert resolve(ReliabilityPolicy.off()) is None
        assert resolve(None) is None

    def test_transport_rejects_disabled_policy(self):
        with pytest.raises(ConfigurationError):
            ReliableTransport(PeerNetwork(), ReliabilityPolicy.off())


class TestFailurePlanValidation:
    def test_certain_loss_rejected_with_guidance(self):
        with pytest.raises(ConfigurationError, match="crashed"):
            FailurePlan(drop_probability=1.0)

    @pytest.mark.parametrize("p", [-0.1, 1.5])
    def test_out_of_range_rejected(self, p):
        with pytest.raises(ConfigurationError, match=r"\[0, 1\]"):
            FailurePlan(drop_probability=p)

    def test_audit_counts_decisions_and_drops(self):
        plan = FailurePlan(drop_probability=0.5, seed=3)
        drops = sum(plan.should_drop(0, 1) for _ in range(100))
        assert plan.decisions == 100
        assert plan.drop_decisions == drops
        assert plan.deliveries() == 100 - drops

    def test_derived_crash_plan_shares_audit(self):
        plan = FailurePlan(drop_probability=0.5, seed=3)
        plan.should_drop(0, 1)
        derived = plan.crash(7)
        derived.should_drop(0, 7)  # crashed: always a drop
        assert plan.decisions == derived.decisions == 2
        assert derived.drop_decisions >= 1
        assert 7 in derived.crashed and 7 not in plan.crashed


class _AlwaysDrop(FailurePlan):
    """Every message is lost — the link the validation forbids modeling
    with drop_probability=1.0, available to tests via subclassing."""

    def should_drop(self, sender, recipient):
        self._audit.decisions += 1
        self._audit.dropped += 1
        return True


class _DropNth(FailurePlan):
    """Drops exactly the nth loss decision (1-based), delivers the rest."""

    def __init__(self, nth):
        super().__init__()
        self._nth = nth

    def should_drop(self, sender, recipient):
        self._audit.decisions += 1
        if self._audit.decisions == self._nth:
            self._audit.dropped += 1
            return True
        return False


class TestReliableTransport:
    def test_retries_until_success_under_loss(self, world):
        net, _devices = _populated(
            world, FailurePlan(drop_probability=0.5, seed=9)
        )
        transport = ReliableTransport(
            net, ReliabilityPolicy(max_attempts=32, seed=9)
        )
        result = transport.call(3, 10, "verify_bound", (0, 1.0, 2.0))
        assert result is True  # every coordinate is below 2.0
        assert transport.retries > 0
        assert transport.simulated_delay > 0.0
        assert transport.suspected == frozenset()

    def test_retries_param_accepted_for_surface_compat(self, world):
        net, _devices = _populated(world)
        transport = ReliableTransport(net, ReliabilityPolicy())
        assert transport.call(3, 10, "adjacency", retries=99) == dict(
            net._handlers[10]["adjacency"](3, None)
        )
        assert transport.knows(10) and not transport.knows(9999)

    def test_suspicion_after_consecutive_exhausted_budgets(self, world):
        net, devices = _populated(world, _AlwaysDrop())
        transport = ReliableTransport(
            net, ReliabilityPolicy(max_attempts=2, crash_after=2)
        )
        with pytest.raises(MessageDropped) as dropped:
            transport.call(3, 10, "adjacency")
        assert dropped.value.peer == 10
        with pytest.raises(PeerCrashed) as crashed:
            transport.call(3, 10, "adjacency")
        assert crashed.value.peer == 10
        assert transport.suspected == frozenset({10})
        # Fail-fast: a suspected peer costs no further messages.
        sent_before = net.stats.sent
        with pytest.raises(PeerCrashed):
            transport.call(3, 10, "adjacency")
        assert net.stats.sent == sent_before
        assert devices[10].adjacency_invocations == 0

    def test_success_resets_consecutive_failures(self, world):
        net, _devices = _populated(world, FailurePlan(drop_probability=0.5, seed=2))
        transport = ReliableTransport(
            net, ReliabilityPolicy(max_attempts=64, crash_after=1, seed=2)
        )
        for _ in range(10):
            transport.call(3, 10, "verify_bound", (0, 1.0, 2.0))
        assert transport.suspected == frozenset()

    def test_crashed_peer_is_suspected_immediately(self, world):
        net, _devices = _populated(world, FailurePlan(crashed=[10]))
        transport = ReliableTransport(net, ReliabilityPolicy())
        with pytest.raises(PeerCrashed) as crashed:
            transport.call(3, 10, "adjacency")
        assert crashed.value.peer == 10
        assert transport.suspected == frozenset({10})

    def test_lost_reply_is_deduplicated_not_recomputed(self, world):
        # Decision 1 is the request leg, decision 2 the response leg:
        # dropping exactly the reply forces a retransmission the
        # recipient must answer from its replay cache.
        net, devices = _populated(world, _DropNth(2))
        transport = ReliableTransport(net, ReliabilityPolicy(max_attempts=4))
        result = transport.call(3, 10, "verify_bound", (0, 1.0, 2.0))
        assert result is True
        assert net.stats.deduped == 1
        assert devices[10].verify_invocations == 1
        assert devices[10].questions_answered == {(0, 1.0, 2.0)}

    def test_distinct_calls_are_not_deduplicated(self, world):
        net, devices = _populated(world)
        transport = ReliableTransport(net, ReliabilityPolicy())
        transport.call(3, 10, "verify_bound", (0, 1.0, 2.0))
        transport.call(3, 10, "verify_bound", (0, 1.0, 2.0))
        assert net.stats.deduped == 0
        assert devices[10].verify_invocations == 2


class TestProtocolAbort:
    def test_fields_and_typing(self):
        exc = ProtocolAbort(
            ABORT_BELOW_K, "only 2 survive", host=3, evicted={7, 9}
        )
        assert isinstance(exc, ProtocolError)
        assert exc.reason == ABORT_BELOW_K
        assert exc.host == 3
        assert exc.evicted == frozenset({7, 9})
        assert "below_k" in str(exc) and "only 2 survive" in str(exc)

    def test_unknown_reason_rejected(self):
        with pytest.raises(ConfigurationError):
            ProtocolAbort("out_of_coffee", "detail")

    def test_factory_counts_through_obs(self):
        obs.enable(MetricsRegistry())
        try:
            exc = abort(ABORT_BELOW_K, "detail")
            assert isinstance(exc, ProtocolAbort)
            counters = obs.snapshot()["counters"]
            assert counters[metric.PROTOCOL_ABORTS] == 1.0
        finally:
            obs.disable()

    def test_reason_vocabulary_is_closed(self):
        assert ABORT_REASONS == {
            "below_k",
            "host_failed",
            "message_loss",
            "reform_budget_exhausted",
            "no_convergence",
        }


class TestMetamorphic:
    """The two defining equivalences of the runtime (ISSUE satellites)."""

    def test_disabled_policy_is_bit_identical_to_seed_engine(self, world):
        ds, graph = world
        config = SimulationConfig(k=5)
        seed_engine = CloakingEngine(ds, graph, config, policy="secure")
        off_engine = CloakingEngine(
            ds, graph, config, policy="secure",
            reliability=ReliabilityPolicy.off(),
        )
        for host in (3, 17, 42, 101):
            a = seed_engine.request(host)
            b = off_engine.request(host)
            assert a.cluster.members == b.cluster.members
            assert a.region.rect == b.region.rect  # exact float equality
            assert a.bounding_messages == b.bounding_messages
            assert a.region_from_cache == b.region_from_cache

    def test_enabled_policy_clean_network_matches_seed_session(self, world):
        ds, graph = world
        config = SimulationConfig(k=5)
        seed = P2PCloakingSession.bootstrapped(ds, graph, config)
        reliable = P2PCloakingSession.bootstrapped(
            ds, graph, config, reliability=ReliabilityPolicy(seed=1)
        )
        for host in (3, 17, 42):
            a = seed.request(host)
            b = reliable.request(host)
            assert a.cluster.members == b.cluster.members
            assert a.region.rect == b.region.rect
        assert reliable.transport.retries == 0
        assert reliable.evicted == frozenset()

    def test_unbounded_retries_recover_the_failure_free_cloak(self, world):
        # Failures + enough retries that no budget is ever exhausted (so
        # no evictions) must converge to the exact failure-free result:
        # dedup keeps every logical answer identical however often the
        # network forces a resend.
        ds, graph = world
        config = SimulationConfig(k=5)
        clean = P2PCloakingSession.bootstrapped(
            ds, graph, config, reliability=ReliabilityPolicy(seed=4)
        )
        lossy_net = PeerNetwork(FailurePlan(drop_probability=0.08, seed=4))
        lossy = P2PCloakingSession.bootstrapped(
            ds, graph, config, network=lossy_net,
            reliability=ReliabilityPolicy(
                max_attempts=64, crash_after=10**6, seed=4
            ),
        )
        for host in (3, 17, 42):
            a = clean.request(host)
            b = lossy.request(host)
            assert a.cluster.members == b.cluster.members
            assert a.region.rect == b.region.rect
        assert lossy.transport.retries > 0
        assert lossy.evicted == frozenset()
        assert lossy.transport.suspected == frozenset()


class TestEngineWiring:
    def test_failure_plan_without_reliability_rejected(self, world):
        ds, graph = world
        with pytest.raises(ConfigurationError, match="failure_plan"):
            CloakingEngine(
                ds, graph, SimulationConfig(k=5),
                failure_plan=FailurePlan(drop_probability=0.1),
            )

    def test_reliability_requires_distributed_progressive(self, world):
        ds, graph = world
        config = SimulationConfig(k=5)
        with pytest.raises(ConfigurationError):
            CloakingEngine(
                ds, graph, config, mode="centralized",
                reliability=ReliabilityPolicy(),
            )
        with pytest.raises(ConfigurationError):
            CloakingEngine(
                ds, graph, config, policy="optimal",
                reliability=ReliabilityPolicy(),
            )
        with pytest.raises(ConfigurationError):
            CloakingEngine(
                ds, graph, config, min_area=0.01,
                reliability=ReliabilityPolicy(),
            )

    def test_reliable_engine_serves_and_caches(self, world):
        ds, graph = world
        config = SimulationConfig(k=5)
        engine = CloakingEngine(
            ds, graph, config,
            reliability=ReliabilityPolicy(seed=2),
            failure_plan=FailurePlan(drop_probability=0.05, seed=2),
        )
        first = engine.request(3)
        assert first.region.satisfies(config.k)
        member = next(iter(first.cluster.members - {3}))
        again = engine.request(member)
        assert again.region_from_cache
        assert again.region.rect == first.region.rect
        assert engine.regions_cached == 1
        batch = engine.request_many([3, member])
        assert all(r.region_from_cache for r in batch)

    def test_below_k_aborts_cleanly_with_empty_registry(self, world):
        ds, graph = world
        config = SimulationConfig(k=301)  # unsatisfiable over 300 users
        engine = CloakingEngine(
            ds, graph, config, reliability=ReliabilityPolicy(seed=2)
        )
        with pytest.raises(ProtocolAbort) as aborted:
            engine.request(3)
        assert aborted.value.reason in ABORT_REASONS
        assert engine.clustering.registry.assigned_count == 0
