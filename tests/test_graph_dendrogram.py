"""Tests for the single-linkage dendrogram and Algorithm 1's fast form."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.components import t_component
from repro.graph.dendrogram import (
    cut_smallest_valid,
    single_linkage_dendrogram,
    smallest_valid_component,
)
from repro.graph.generators import random_weighted_graph, small_world_graph
from repro.graph.wpg import WeightedProximityGraph


class TestDendrogramStructure:
    def test_single_vertex(self):
        g = WeightedProximityGraph()
        g.add_vertex(0)
        roots = single_linkage_dendrogram(g)
        assert len(roots) == 1
        assert roots[0].is_leaf
        assert roots[0].size == 1

    def test_one_root_per_component(self):
        g = WeightedProximityGraph.from_edges(
            [(0, 1, 1.0), (2, 3, 2.0)], vertices=[4]
        )
        roots = single_linkage_dendrogram(g)
        assert len(roots) == 3
        assert sorted(r.size for r in roots) == [1, 2, 2]

    def test_leaves_cover_vertices(self, two_blobs_graph):
        roots = single_linkage_dendrogram(two_blobs_graph)
        leaves = set()
        for root in roots:
            leaves |= set(root.leaves())
        assert leaves == set(two_blobs_graph.vertices())

    def test_root_weight_is_bottleneck(self, two_blobs_graph):
        (root,) = single_linkage_dendrogram(two_blobs_graph)
        assert root.merge_weight == 9.0  # the bridge

    def test_same_level_merges_flatten(self):
        """All components joined at one weight level share one node."""
        g = WeightedProximityGraph.from_edges(
            [(0, 1, 2.0), (2, 3, 2.0), (1, 2, 2.0)]
        )
        (root,) = single_linkage_dendrogram(g)
        assert root.merge_weight == 2.0
        assert len(root.children) == 4  # four leaves, one multi-way merge
        assert all(child.is_leaf for child in root.children)

    def test_children_are_next_level_components(self, two_blobs_graph):
        (root,) = single_linkage_dendrogram(two_blobs_graph)
        child_sets = [set(c.leaves()) for c in root.children]
        assert sorted(sorted(s) for s in child_sets) == [[0, 1, 2, 3], [4, 5, 6, 7]]


class TestCut:
    def test_two_blobs_k4(self, two_blobs_graph):
        roots = single_linkage_dendrogram(two_blobs_graph)
        clusters = cut_smallest_valid(roots, 4)
        assert sorted(sorted(c) for c in clusters) == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_two_blobs_k5_keeps_whole(self, two_blobs_graph):
        roots = single_linkage_dendrogram(two_blobs_graph)
        clusters = cut_smallest_valid(roots, 5)
        assert clusters == [set(range(8))]

    def test_chain_k2(self, chain_graph):
        """Descending removal on the 8..1 path yields nested valid splits."""
        roots = single_linkage_dendrogram(chain_graph)
        clusters = cut_smallest_valid(roots, 2)
        assert all(len(c) >= 2 for c in clusters)
        covered = set().union(*clusters)
        assert covered == set(chain_graph.vertices())

    def test_invalid_roots_returned(self):
        g = WeightedProximityGraph()
        g.add_vertex(0)  # lone vertex can never reach k=2
        g.add_edge(1, 2, 1.0)
        clusters = cut_smallest_valid(single_linkage_dendrogram(g), 2)
        assert {frozenset(c) for c in clusters} == {
            frozenset({0}),
            frozenset({1, 2}),
        }


class TestSmallestValidComponent:
    def test_matches_t_component_scan(self, two_blobs_graph):
        roots = single_linkage_dendrogram(two_blobs_graph)
        got = smallest_valid_component(roots, 0, 4)
        assert got == {0, 1, 2, 3}

    def test_none_when_component_too_small(self):
        g = WeightedProximityGraph.from_edges([(0, 1, 1.0)])
        roots = single_linkage_dendrogram(g)
        assert smallest_valid_component(roots, 0, 3) is None

    def test_missing_vertex_returns_none(self, two_blobs_graph):
        roots = single_linkage_dendrogram(two_blobs_graph)
        assert smallest_valid_component(roots, 99, 2) is None

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 500), k=st.integers(2, 6))
    def test_property_equals_minimal_t_scan(self, seed, k):
        """The dendrogram answer equals a brute-force threshold scan.

        For every vertex: the smallest valid t-component found by walking
        the dendrogram must equal the t-component at the smallest weight
        level t where |t-component| >= k.
        """
        graph = random_weighted_graph(18, edge_probability=0.2, seed=seed)
        roots = single_linkage_dendrogram(graph)
        levels = sorted({e.weight for e in graph.edges()})
        for vertex in graph.vertices():
            expected = None
            for t in [0.0, *levels]:
                candidate = t_component(graph, vertex, t)
                if len(candidate) >= k:
                    expected = candidate
                    break
            assert smallest_valid_component(roots, vertex, k) == expected


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 300), k=st.integers(2, 5))
def test_property_cut_is_partition(seed, k):
    """The Algorithm 1 cut partitions the graph into valid-or-doomed pieces."""
    graph = small_world_graph(30, base_degree=4, rewire_probability=0.2, seed=seed)
    clusters = cut_smallest_valid(single_linkage_dendrogram(graph), k)
    covered: set[int] = set()
    for cluster in clusters:
        assert not (cluster & covered)
        covered |= cluster
        if len(cluster) < k:
            # Only whole undersized components may come out invalid.
            member = next(iter(cluster))
            assert t_component(graph, member, float("inf")) == cluster
    assert covered == set(graph.vertices())


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 300))
def test_property_nodes_are_t_components(seed):
    """Every dendrogram node is the t-component at its merge weight.

    A node formed at level w is a maximal set connected through edges of
    weight <= w — the t-connectivity equivalence class Definition 4.1
    describes.
    """
    graph = random_weighted_graph(20, edge_probability=0.25, seed=seed)
    roots = single_linkage_dendrogram(graph)
    stack = list(roots)
    while stack:
        node = stack.pop()
        members = set(node.leaves())
        representative = next(iter(members))
        assert t_component(graph, representative, node.merge_weight) == members
        stack.extend(node.children)
