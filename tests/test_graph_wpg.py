"""Tests for the WPG data structure and union-find."""

import pytest

from repro.errors import GraphError
from repro.graph.unionfind import UnionFind
from repro.graph.wpg import Edge, WeightedProximityGraph


class TestEdge:
    def test_make_normalises(self):
        e = Edge.make(5, 2, 1.5)
        assert (e.u, e.v) == (2, 5)

    def test_self_loop_raises(self):
        with pytest.raises(GraphError):
            Edge.make(3, 3, 1.0)

    def test_other(self):
        e = Edge.make(1, 2, 1.0)
        assert e.other(1) == 2
        assert e.other(2) == 1
        with pytest.raises(GraphError):
            e.other(9)


class TestGraphBasics:
    def test_add_edge_creates_vertices(self):
        g = WeightedProximityGraph()
        g.add_edge(1, 2, 3.0)
        assert 1 in g and 2 in g
        assert g.vertex_count == 2
        assert g.edge_count == 1

    def test_weight_symmetric(self):
        g = WeightedProximityGraph()
        g.add_edge(1, 2, 3.0)
        assert g.weight(1, 2) == g.weight(2, 1) == 3.0

    def test_readd_same_weight_is_noop(self):
        g = WeightedProximityGraph()
        g.add_edge(1, 2, 3.0)
        g.add_edge(2, 1, 3.0)
        assert g.edge_count == 1

    def test_readd_different_weight_raises(self):
        g = WeightedProximityGraph()
        g.add_edge(1, 2, 3.0)
        with pytest.raises(GraphError):
            g.add_edge(1, 2, 4.0)

    def test_self_loop_raises(self):
        g = WeightedProximityGraph()
        with pytest.raises(GraphError):
            g.add_edge(1, 1, 1.0)

    def test_remove_edge(self):
        g = WeightedProximityGraph()
        g.add_edge(1, 2, 3.0)
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.edge_count == 0
        assert 1 in g  # vertices survive

    def test_remove_missing_raises(self):
        g = WeightedProximityGraph()
        g.add_vertex(1)
        g.add_vertex(2)
        with pytest.raises(GraphError):
            g.remove_edge(1, 2)

    def test_unknown_vertex_queries_raise(self):
        g = WeightedProximityGraph()
        with pytest.raises(GraphError):
            list(g.neighbors(1))
        with pytest.raises(GraphError):
            g.degree(1)
        with pytest.raises(GraphError):
            g.weight(1, 2)

    def test_edges_reported_once(self):
        g = WeightedProximityGraph.from_edges([(1, 2, 1.0), (2, 3, 2.0)])
        keys = sorted(e.key() for e in g.edges())
        assert keys == [(1, 2), (2, 3)]

    def test_adjacency_message_is_copy(self):
        g = WeightedProximityGraph.from_edges([(1, 2, 1.0)])
        msg = g.adjacency_message(1)
        msg[99] = 5.0
        assert not g.has_edge(1, 99)
        assert g.adjacency_message(1) == {2: 1.0}

    def test_from_edges_with_isolated_vertices(self):
        g = WeightedProximityGraph.from_edges([(1, 2, 1.0)], vertices=[7])
        assert 7 in g
        assert g.degree(7) == 0


class TestDerivedGraphs:
    @pytest.fixture()
    def triangle_plus(self):
        return WeightedProximityGraph.from_edges(
            [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0), (2, 3, 4.0)]
        )

    def test_subgraph_keeps_internal_edges_only(self, triangle_plus):
        sub = triangle_plus.subgraph([0, 1, 2])
        assert sub.edge_count == 3
        assert not sub.has_edge(2, 3)

    def test_subgraph_unknown_vertex_raises(self, triangle_plus):
        with pytest.raises(GraphError):
            triangle_plus.subgraph([0, 99])

    def test_copy_is_independent(self, triangle_plus):
        clone = triangle_plus.copy()
        clone.remove_edge(0, 1)
        assert triangle_plus.has_edge(0, 1)
        assert not clone.has_edge(0, 1)


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind([1, 2, 3])
        assert not uf.connected(1, 2)
        assert uf.component_size(1) == 1

    def test_union_and_find(self):
        uf = UnionFind()
        assert uf.union(1, 2) is True
        assert uf.union(1, 2) is False
        assert uf.connected(1, 2)
        assert uf.component_size(2) == 2

    def test_transitive_union(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(3, 4)
        uf.union(2, 3)
        assert uf.connected(1, 4)
        assert uf.component_size(1) == 4

    def test_components(self):
        uf = UnionFind([5])
        uf.union(1, 2)
        uf.union(3, 4)
        groups = sorted(sorted(g) for g in uf.components().values())
        assert groups == [[1, 2], [3, 4], [5]]

    def test_lazy_element_creation(self):
        uf = UnionFind()
        assert uf.find("a") == "a"
        assert "a" in uf

    def test_union_chain_sizes(self):
        uf = UnionFind()
        for i in range(9):
            uf.union(i, i + 1)
        assert uf.component_size(0) == 10
        assert len(uf.components()) == 1
