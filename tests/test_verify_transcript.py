"""Transcript recording and the from-messages-alone leakage auditor."""

from __future__ import annotations

import math

import pytest

from repro.bounding.boxing import secure_bounding_box
from repro.bounding.policies import ExponentialPolicy, LinearPolicy
from repro.bounding.protocol import progressive_upper_bound
from repro.errors import VerificationError
from repro.geometry.point import Point
from repro.verify.oracles import oracle_bounding_box
from repro.verify.transcript import (
    DIRECTION_PAYLOAD,
    DIRECTIONS,
    PAYLOAD_DIRECTION,
    TranscriptRecorder,
    VerificationMessage,
    audit_intervals,
)

MEMBERS = [Point(0.42, 0.58), Point(0.30, 0.70), Point(0.55, 0.45), Point(0.48, 0.62)]


class TestRecorder:
    def test_record_and_question_set(self):
        recorder = TranscriptRecorder()
        recorder.record("x_max", 7, 0.5, False)
        recorder.record("x_max", 7, 0.8, True)
        recorder.record("y_min", 3, -0.2, True)
        assert len(recorder) == 3
        assert recorder.users() == frozenset({3, 7})
        assert recorder.question_set(7) == frozenset({(0, 1.0, 0.5), (0, 1.0, 0.8)})
        assert recorder.question_set(3) == frozenset({(1, -1.0, -0.2)})
        assert recorder.question_set(99) == frozenset()

    def test_unknown_direction_raises(self):
        with pytest.raises(VerificationError):
            TranscriptRecorder().record("x_mid", 0, 0.5, True)

    def test_payload_maps_are_inverse(self):
        assert set(DIRECTION_PAYLOAD) == set(DIRECTIONS)
        for payload, direction in PAYLOAD_DIRECTION.items():
            assert DIRECTION_PAYLOAD[direction] == payload


class TestAuditIntervals:
    def test_no_then_yes_pins_an_interval(self):
        messages = [
            VerificationMessage(1, "x_max", 0.3, False),
            VerificationMessage(1, "x_max", 0.5, True),
        ]
        assert audit_intervals(messages) == {(1, "x_max"): (0.3, 0.5)}

    def test_agree_only_user_is_half_open(self):
        intervals = audit_intervals([VerificationMessage(2, "y_max", 0.4, True)])
        assert intervals == {(2, "y_max"): (-math.inf, 0.4)}

    def test_never_agreeing_user_is_unresolved(self):
        intervals = audit_intervals([VerificationMessage(2, "y_max", 0.4, False)])
        assert intervals == {(2, "y_max"): (0.4, math.inf)}

    def test_tightest_bounds_win(self):
        messages = [
            VerificationMessage(1, "x_max", 0.1, False),
            VerificationMessage(1, "x_max", 0.3, False),
            VerificationMessage(1, "x_max", 0.9, True),
            VerificationMessage(1, "x_max", 0.5, True),
        ]
        assert audit_intervals(messages) == {(1, "x_max"): (0.3, 0.5)}

    def test_contradiction_raises(self):
        messages = [
            VerificationMessage(1, "x_max", 0.5, False),
            VerificationMessage(1, "x_max", 0.4, True),
        ]
        with pytest.raises(VerificationError):
            audit_intervals(messages)


class TestProtocolTap:
    """The recorder hooks in the analytic protocol report faithfully."""

    def test_scalar_run_transcript_reproduces_intervals(self):
        values = [0.2, 0.45, 0.7, 0.9]
        recorder = TranscriptRecorder()
        outcome = progressive_upper_bound(
            values,
            0.2,
            LinearPolicy(0.1),
            recorder=lambda i, b, a: recorder.record("x_max", i, b, a),
        )
        audited = audit_intervals(recorder.messages)
        # The auditor recomputes exactly the protocol's own intervals.
        assert audited == {
            (i, "x_max"): interval
            for i, interval in outcome.agreement_intervals.items()
        }
        # And every true value lies in its audited interval.
        for i, value in enumerate(values):
            low, high = audited[(i, "x_max")]
            assert low < value <= high

    @pytest.mark.parametrize(
        "factory", [lambda: LinearPolicy(0.07), lambda: ExponentialPolicy(0.05)]
    )
    def test_box_recorder_audit(self, factory):
        recorder = TranscriptRecorder()
        member_ids = [10, 20, 30, 40]
        result = secure_bounding_box(
            MEMBERS, 0, factory, recorder=recorder.box_recorder(member_ids)
        )
        assert recorder.users() == frozenset(member_ids)
        audited = audit_intervals(recorder.messages)
        # Every member's true signed coordinate lies in (low, high].
        for (user, direction), (low, high) in audited.items():
            axis, sign = DIRECTION_PAYLOAD[direction]
            value = sign * MEMBERS[member_ids.index(user)].coordinate(axis)
            assert low < value <= high
        # The audited "yes" bounds reconstruct a box containing the truth.
        oracle = oracle_bounding_box(MEMBERS)
        assert result.region.contains_rect(oracle)
