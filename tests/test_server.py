"""Tests for the LBS server: POI database, queries, request costs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SimulationConfig
from repro.datasets import uniform_points
from repro.errors import ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.server.costs import request_cost_messages, total_request_cost
from repro.server.poidb import POIDatabase
from repro.server.queries import filter_exact_knn, range_knn_query, range_query


@pytest.fixture(scope="module")
def db():
    return POIDatabase(uniform_points(500, seed=17))


class TestPOIDatabase:
    def test_len_and_poi(self, db):
        assert len(db) == 500
        assert isinstance(db.poi(3), Point)

    def test_in_region_matches_brute_force(self, db):
        region = Rect(0.2, 0.5, 0.3, 0.7)
        want = {i for i in range(500) if region.contains(db.poi(i))}
        assert set(db.in_region(region)) == want
        assert db.count_in_region(region) == len(want)

    def test_nearest(self, db):
        center = Point(0.5, 0.5)
        ids = db.nearest(center, 5)
        dists = [center.distance_to(db.poi(i)) for i in ids]
        assert dists == sorted(dists)
        assert len(ids) == 5

    def test_points_of(self, db):
        assert db.points_of([1, 2]) == [db.poi(1), db.poi(2)]

    def test_bad_cell_size(self):
        with pytest.raises(ConfigurationError):
            POIDatabase(uniform_points(10, seed=0), cell_size=0.0)


class TestRangeQuery:
    def test_zero_radius_equals_region_contents(self, db):
        region = Rect(0.4, 0.6, 0.4, 0.6)
        assert set(range_query(db, region)) == set(db.in_region(region))

    def test_radius_expands(self, db):
        region = Rect(0.4, 0.6, 0.4, 0.6)
        base = set(range_query(db, region))
        wide = set(range_query(db, region, radius=0.1))
        assert base <= wide

    def test_negative_radius_rejected(self, db):
        with pytest.raises(ConfigurationError):
            range_query(db, Rect.unit_square(), radius=-0.1)

    @settings(max_examples=25, deadline=None)
    @given(
        x=st.floats(min_value=0.1, max_value=0.9),
        y=st.floats(min_value=0.1, max_value=0.9),
        radius=st.floats(min_value=0.01, max_value=0.2),
    )
    def test_property_superset_for_any_anchor(self, db, x, y, radius):
        """Casper soundness: for any anchor inside the cloaked region, the
        candidate set contains every POI within the query radius."""
        region = Rect(0.3, 0.7, 0.3, 0.7)
        candidates = set(range_query(db, region, radius=radius))
        anchor = Point(0.3 + 0.4 * x, 0.3 + 0.4 * y)
        exact = {
            i
            for i in range(len(db))
            if anchor.distance_to(db.poi(i)) <= radius
        }
        assert exact <= candidates


class TestRangeKNN:
    def test_small_db_returns_everything(self):
        tiny = POIDatabase(uniform_points(3, seed=2))
        assert set(range_knn_query(tiny, Rect.unit_square(), 5)) == {0, 1, 2}

    def test_k_validation(self, db):
        with pytest.raises(ConfigurationError):
            range_knn_query(db, Rect.unit_square(), 0)

    @settings(max_examples=20, deadline=None)
    @given(
        x=st.floats(min_value=0.0, max_value=1.0),
        y=st.floats(min_value=0.0, max_value=1.0),
        k=st.integers(1, 8),
    )
    def test_property_knn_soundness(self, db, x, y, k):
        """For any anchor inside the region, its true kNN answers are in
        the candidate superset (Hu and Lee's kRNN contract)."""
        region = Rect(0.35, 0.65, 0.35, 0.65)
        anchor = Point(0.35 + 0.3 * x, 0.35 + 0.3 * y)
        candidates = set(range_knn_query(db, region, k))
        truth = sorted(
            range(len(db)), key=lambda i: anchor.squared_distance_to(db.poi(i))
        )[:k]
        assert set(truth) <= candidates

    def test_filter_exact_knn(self, db):
        region = Rect(0.45, 0.55, 0.45, 0.55)
        anchor = Point(0.5, 0.5)
        candidates = range_knn_query(db, region, 4)
        refined = filter_exact_knn(db, candidates, anchor, 4)
        truth = sorted(
            range(len(db)), key=lambda i: anchor.squared_distance_to(db.poi(i))
        )[:4]
        assert refined == truth

    def test_filter_k_validation(self, db):
        with pytest.raises(ConfigurationError):
            filter_exact_knn(db, [1, 2], Point(0.5, 0.5), 0)


class TestCosts:
    def test_request_cost_proportional_to_pois(self, db):
        config = SimulationConfig(user_count=500, request_cost=1000.0)
        region = Rect(0.4, 0.6, 0.4, 0.6)
        cost = request_cost_messages(db, region, config)
        assert cost == 1000.0 * db.count_in_region(region)

    def test_total_request_cost_components(self, db):
        config = SimulationConfig(user_count=500)
        region = Rect(0.4, 0.6, 0.4, 0.6)
        total = total_request_cost(
            db, region, clustering_messages=7, bounding_messages=11, config=config
        )
        assert total == 7 + 11 + request_cost_messages(db, region, config)
