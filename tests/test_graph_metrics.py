"""Tests for graph metrics and Corollary 4.2's diameter bound."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.generators import (
    path_graph,
    random_regular_graph,
    random_weighted_graph,
    small_world_graph,
)
from repro.graph.metrics import (
    average_degree,
    graph_diameter,
    max_edge_weight,
    regular_graph_diameter_bound,
    shortest_path_lengths,
)
from repro.graph.wpg import WeightedProximityGraph


class TestBasicMetrics:
    def test_average_degree_empty(self):
        assert average_degree(WeightedProximityGraph()) == 0.0

    def test_average_degree_triangle(self):
        g = WeightedProximityGraph.from_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]
        )
        assert average_degree(g) == 2.0

    def test_max_edge_weight(self):
        g = path_graph([3.0, 7.0, 2.0])
        assert max_edge_weight(g) == 7.0

    def test_max_edge_weight_subset(self):
        g = path_graph([3.0, 7.0, 2.0])
        assert max_edge_weight(g, vertices=[2, 3]) == 2.0

    def test_max_edge_weight_edgeless(self):
        g = WeightedProximityGraph()
        g.add_vertex(0)
        assert max_edge_weight(g) == 0.0


class TestShortestPaths:
    def test_path_distances(self):
        g = path_graph([1.0, 2.0, 4.0])
        dist = shortest_path_lengths(g, 0)
        assert dist == {0: 0.0, 1: 1.0, 2: 3.0, 3: 7.0}

    def test_unknown_source_raises(self):
        with pytest.raises(GraphError):
            shortest_path_lengths(WeightedProximityGraph(), 0)

    def test_unreachable_vertices_absent(self):
        g = WeightedProximityGraph.from_edges([(0, 1, 1.0)], vertices=[2])
        assert 2 not in shortest_path_lengths(g, 0)


class TestDiameter:
    def test_path_diameter(self):
        assert graph_diameter(path_graph([1.0, 2.0, 4.0])) == 7.0

    def test_single_vertex(self):
        g = WeightedProximityGraph()
        g.add_vertex(0)
        assert graph_diameter(g) == 0.0

    def test_disconnected_is_infinite(self):
        g = WeightedProximityGraph.from_edges([(0, 1, 1.0)], vertices=[2])
        assert graph_diameter(g) == math.inf

    def test_subset_diameter(self):
        g = path_graph([1.0, 2.0, 4.0])
        assert graph_diameter(g, vertices=[0, 1, 2]) == 3.0

    def test_empty_raises(self):
        with pytest.raises(GraphError):
            graph_diameter(WeightedProximityGraph())


class TestCorollary42:
    def test_parameter_validation(self):
        with pytest.raises(GraphError):
            regular_graph_diameter_bound(1, 3, 1.0)
        with pytest.raises(GraphError):
            regular_graph_diameter_bound(10, 2, 1.0)
        with pytest.raises(GraphError):
            regular_graph_diameter_bound(10, 3, 1.0, epsilon=0.0)
        with pytest.raises(GraphError):
            regular_graph_diameter_bound(10, 3, -1.0)

    def test_scales_linearly_with_weight(self):
        b1 = regular_graph_diameter_bound(20, 4, 1.0)
        b5 = regular_graph_diameter_bound(20, 4, 5.0)
        assert b5 == pytest.approx(5 * b1)

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 200),
        degree=st.integers(3, 6),
        k=st.sampled_from([10, 16, 24]),
    )
    def test_property_bound_holds_on_random_regular(self, seed, degree, k):
        """Corollary 4.2: actual weighted diameter <= the bound.

        The underlying theorem is asymptotic/probabilistic, but at these
        sizes the bound is loose enough to hold essentially always; a
        disconnected sample (pairing model occasionally fragments) is
        skipped.
        """
        if (k * degree) % 2:
            k += 1
        graph = random_regular_graph(k, degree, max_weight=7, seed=seed)
        diameter = graph_diameter(graph)
        if math.isinf(diameter):
            pytest.skip("sampled graph disconnected")
        bound = regular_graph_diameter_bound(k, degree, max_edge_weight(graph))
        assert diameter <= bound


class TestGenerators:
    def test_random_regular_degrees(self):
        g = random_regular_graph(12, 4, seed=1)
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_random_regular_odd_product_raises(self):
        with pytest.raises(GraphError):
            random_regular_graph(5, 3)

    def test_small_world_param_validation(self):
        with pytest.raises(GraphError):
            small_world_graph(10, base_degree=3)
        with pytest.raises(GraphError):
            small_world_graph(4, base_degree=4)
        with pytest.raises(GraphError):
            small_world_graph(10, base_degree=4, rewire_probability=1.5)

    def test_small_world_vertex_count(self):
        g = small_world_graph(20, base_degree=4, seed=2)
        assert g.vertex_count == 20
        assert g.edge_count > 0

    def test_random_weighted_probability_extremes(self):
        empty = random_weighted_graph(10, edge_probability=0.0)
        full = random_weighted_graph(10, edge_probability=1.0)
        assert empty.edge_count == 0
        assert full.edge_count == 45

    def test_generators_reproducible(self):
        a = random_weighted_graph(15, 0.3, seed=5)
        b = random_weighted_graph(15, 0.3, seed=5)
        assert sorted((e.key(), e.weight) for e in a.edges()) == sorted(
            (e.key(), e.weight) for e in b.edges()
        )
