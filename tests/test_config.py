"""Tests for the Table I configuration object."""

import pytest

from repro.config import DEFAULTS, SimulationConfig
from repro.errors import ConfigurationError


class TestDefaults:
    def test_table1_values(self):
        assert DEFAULTS.user_count == 104_770
        assert DEFAULTS.delta == 2e-3
        assert DEFAULTS.max_peers == 10
        assert DEFAULTS.k == 10
        assert DEFAULTS.bounding_cost == 1.0
        assert DEFAULTS.request_cost == 1000.0
        assert DEFAULTS.request_count == 2_000

    def test_uniform_bound_formula(self):
        assert DEFAULTS.uniform_bound_u(10) == pytest.approx(10 / 104_770)

    def test_initial_bound_equals_u(self):
        assert DEFAULTS.initial_bound(25) == DEFAULTS.uniform_bound_u(25)

    def test_uniform_bound_rejects_empty_cluster(self):
        with pytest.raises(ConfigurationError):
            DEFAULTS.uniform_bound_u(0)


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("user_count", 0),
            ("delta", 0.0),
            ("delta", -1.0),
            ("max_peers", 0),
            ("k", 0),
            ("bounding_cost", 0.0),
            ("request_cost", -5.0),
            ("request_count", 0),
        ],
    )
    def test_out_of_domain_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            SimulationConfig(**{field: value})

    def test_k_larger_than_population_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(user_count=5, k=6)

    def test_with_overrides_returns_new(self):
        base = SimulationConfig()
        changed = base.with_overrides(k=25)
        assert changed.k == 25
        assert base.k == 10

    def test_with_overrides_validates(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig().with_overrides(k=0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SimulationConfig().k = 3  # type: ignore[misc]
