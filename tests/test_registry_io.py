"""Registry persistence error paths and ordering guarantees.

Complements ``test_persistence.py`` (happy-path roundtrips live there):
this file pins down the malformed-payload failure modes and the
registration-order/id-stability contract the cache keying depends on.
"""

from __future__ import annotations

import json

import pytest

from repro.clustering.base import ClusterRegistry
from repro.clustering.registry_io import load_registry, save_registry
from repro.errors import ClusteringError


def _write(tmp_path, payload) -> str:
    path = tmp_path / "registry.json"
    path.write_text(json.dumps(payload))
    return str(path)


class TestMalformedPayloads:
    def test_top_level_not_a_dict(self, tmp_path):
        with pytest.raises(ClusteringError):
            load_registry(_write(tmp_path, [[1, 2, 3]]))

    def test_missing_format_marker(self, tmp_path):
        with pytest.raises(ClusteringError):
            load_registry(_write(tmp_path, {"clusters": [[1, 2]]}))

    def test_clusters_not_a_list(self, tmp_path):
        payload = {"format": "cluster-registry-v1", "clusters": "1,2,3"}
        with pytest.raises(ClusteringError):
            load_registry(_write(tmp_path, payload))

    def test_clusters_key_missing(self, tmp_path):
        payload = {"format": "cluster-registry-v1"}
        with pytest.raises(ClusteringError):
            load_registry(_write(tmp_path, payload))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "registry.json"
        path.write_text("")
        with pytest.raises(ClusteringError):
            load_registry(path)


class TestOrderingContract:
    def test_cluster_ids_follow_registration_order(self, tmp_path):
        registry = ClusterRegistry()
        groups = [{5, 6, 7}, {1, 2}, {10, 11, 12, 13}]
        for group in groups:
            registry.register(group)
        path = tmp_path / "registry.json"
        save_registry(registry, path)
        loaded = load_registry(path)
        for cid, group in enumerate(groups):
            assert loaded.cluster_by_id(cid) == frozenset(group)

    def test_double_roundtrip_is_stable(self, tmp_path):
        registry = ClusterRegistry()
        registry.register({3, 4, 5})
        registry.register({8, 9})
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        save_registry(registry, first)
        save_registry(load_registry(first), second)
        assert first.read_text() == second.read_text()

    def test_accepts_str_paths(self, tmp_path):
        registry = ClusterRegistry()
        registry.register({1, 2})
        path = str(tmp_path / "registry.json")
        save_registry(registry, path)
        assert load_registry(path).cluster_of(1) == frozenset({1, 2})
