"""Tests for connectivity, t-reachability and Theorem 4.3's properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.components import (
    connected_component,
    connected_components,
    external_border,
    is_connected,
    t_component,
    t_connected,
)
from repro.graph.generators import random_weighted_graph
from repro.graph.wpg import WeightedProximityGraph


@pytest.fixture()
def weighted_path():
    """0 -1- 1 -5- 2 -2- 3 (weights on edges)."""
    g = WeightedProximityGraph()
    g.add_edge(0, 1, 1.0)
    g.add_edge(1, 2, 5.0)
    g.add_edge(2, 3, 2.0)
    return g


class TestTComponent:
    def test_threshold_cuts_heavy_edges(self, weighted_path):
        assert t_component(weighted_path, 0, t=1.0) == {0, 1}
        assert t_component(weighted_path, 0, t=4.9) == {0, 1}
        assert t_component(weighted_path, 0, t=5.0) == {0, 1, 2, 3}

    def test_exclude(self, weighted_path):
        assert t_component(weighted_path, 0, t=5.0, exclude={1}) == {0}

    def test_excluded_start_raises(self, weighted_path):
        with pytest.raises(GraphError):
            t_component(weighted_path, 0, t=1.0, exclude={0})

    def test_size_limit_early_exit(self, weighted_path):
        part = t_component(weighted_path, 0, t=5.0, size_limit=2)
        assert len(part) >= 2
        assert part <= {0, 1, 2, 3}

    def test_spy_sees_expanded_vertices(self, weighted_path):
        seen = []
        t_component(weighted_path, 0, t=5.0, spy=seen.append)
        assert set(seen) == {0, 1, 2, 3}


class TestTConnectedEquivalence:
    """Theorem 4.3: t-connected is an equivalence relation."""

    @pytest.fixture(scope="class")
    def graph(self):
        return random_weighted_graph(25, edge_probability=0.15, seed=4)

    def test_reflexive(self, graph):
        assert all(t_connected(graph, v, v, t=0.0) for v in graph.vertices())

    def test_symmetric(self, graph):
        vertices = list(graph.vertices())
        for a in vertices[:8]:
            for b in vertices[:8]:
                for t in (2.0, 5.0, 10.0):
                    assert t_connected(graph, a, b, t) == t_connected(graph, b, a, t)

    def test_transitive(self, graph):
        vertices = list(graph.vertices())[:8]
        for t in (3.0, 7.0):
            for a in vertices:
                for b in vertices:
                    for c in vertices:
                        if t_connected(graph, a, b, t) and t_connected(graph, b, c, t):
                            assert t_connected(graph, a, c, t)

    def test_classes_partition(self, graph):
        """The equivalence classes at any t partition the vertex set."""
        for t in (1.0, 4.0, 8.0):
            seen: set[int] = set()
            for v in graph.vertices():
                if v in seen:
                    continue
                cls = t_component(graph, v, t)
                assert not (cls & seen)
                seen |= cls
            assert seen == set(graph.vertices())

    def test_monotone_in_t(self, graph):
        for v in list(graph.vertices())[:10]:
            prev: set[int] = set()
            for t in (1.0, 3.0, 5.0, 8.0, 10.0):
                cur = t_component(graph, v, t)
                assert prev <= cur
                prev = cur


class TestComponents:
    def test_connected_components_cover(self):
        g = WeightedProximityGraph.from_edges(
            [(0, 1, 1.0), (2, 3, 1.0)], vertices=[4]
        )
        comps = connected_components(g)
        assert sorted(sorted(c) for c in comps) == [[0, 1], [2, 3], [4]]

    def test_is_connected(self, weighted_path):
        assert is_connected(weighted_path)
        weighted_path.remove_edge(1, 2)
        assert not is_connected(weighted_path)

    def test_empty_graph_not_connected(self):
        assert not is_connected(WeightedProximityGraph())

    def test_connected_component_with_exclusion(self, weighted_path):
        assert connected_component(weighted_path, 3, exclude={2}) == {3}


class TestExternalBorder:
    def test_border_of_cluster(self, weighted_path):
        assert external_border(weighted_path, {0, 1}, {0, 1}) == {2}

    def test_border_of_everything_is_empty(self, weighted_path):
        full = {0, 1, 2, 3}
        assert external_border(weighted_path, full, full) == set()


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000), t=st.floats(min_value=0.5, max_value=10.5))
def test_property_t_component_edges_bounded(seed, t):
    """Inside any t-component reached via BFS, the spanning path exists.

    Every member of t_component(v) must be t-connected to v per the
    pairwise definition — BFS and the definitional check must agree.
    """
    graph = random_weighted_graph(15, edge_probability=0.25, seed=seed)
    component = t_component(graph, 0, t)
    for member in component:
        assert t_connected(graph, 0, member, t)
    for outsider in set(graph.vertices()) - component:
        assert not t_connected(graph, 0, outsider, t)
