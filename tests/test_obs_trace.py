"""Trace-context propagation, the flight recorder, and the trace CLI.

Covers the four tentpole surfaces of ``repro.obs.trace``:

* the request scope (fresh id at top level, adoption when nested, no-op
  singleton on the fully disabled path);
* the bounded flight recorder (typed kinds, overflow accounting,
  per-trace filtering) and end-to-end attribution through a faulted
  engine run — every message, retry, eviction and abort carries the
  originating request's trace id;
* ``trace/v1`` JSONL export/load round-trips and the CLI renderings
  (summary table, waterfall, JSON mode) pinned against golden fragments;
* exemplars and exact tail quantiles on histograms, and their rendering
  in the snapshot report.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cloaking.p2p_engine import P2PCloakingSession
from repro.config import SimulationConfig
from repro.datasets import uniform_points
from repro.errors import ConfigurationError
from repro.graph.build import build_wpg
from repro.network.failures import FailurePlan
from repro.network.reliability import ProtocolAbort, ReliabilityPolicy
from repro.network.simulator import PeerNetwork
from repro.obs import names as metric
from repro.obs import trace
from repro.obs.report import main as report_main
from repro.obs.trace import main as trace_main


@pytest.fixture()
def recorder():
    """A fresh installed flight recorder; always uninstalled afterwards."""
    trace.reset_trace_context()
    rec = trace.install_recorder(trace.FlightRecorder())
    yield rec
    trace.uninstall_recorder()
    trace.reset_trace_context()


@pytest.fixture()
def metrics():
    """A fresh active registry for one test; always disabled afterwards."""
    registry = obs.enable(obs.MetricsRegistry())
    obs.reset_traces()
    yield registry
    obs.disable()
    obs.reset_traces()


class TestRequestScope:
    def test_disabled_path_returns_shared_noop(self):
        assert trace.get_recorder() is None
        scope = trace.request_scope()
        assert scope is trace.request_scope()  # the shared singleton
        with scope:
            assert trace.current_trace_id() is None

    def test_top_level_scope_allocates_fresh_ids(self, recorder):
        with trace.request_scope() as first:
            assert trace.current_trace_id() == first
        with trace.request_scope() as second:
            assert second == first + 1
        assert trace.current_trace_id() is None

    def test_nested_scope_adopts_outer_id(self, recorder):
        with trace.request_scope() as outer:
            with trace.request_scope() as inner:
                assert inner == outer
            assert trace.current_trace_id() == outer

    def test_scope_restores_on_exception(self, recorder):
        with pytest.raises(RuntimeError):
            with trace.request_scope():
                raise RuntimeError("boom")
        assert trace.current_trace_id() is None


class TestFlightRecorder:
    def test_rejects_unknown_kind(self, recorder):
        with pytest.raises(ConfigurationError, match="unknown"):
            recorder.record("not_a_kind")

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ConfigurationError, match="capacity"):
            trace.FlightRecorder(capacity=0)

    def test_overflow_counts_dropped(self):
        rec = trace.FlightRecorder(capacity=3)
        for _ in range(5):
            rec.record(trace.EVT_RETRY, peer=1)
        assert len(rec) == 3
        assert rec.dropped == 2
        rec.clear()
        assert len(rec) == 0 and rec.dropped == 0

    def test_events_filter_by_trace(self, recorder):
        with trace.request_scope() as a:
            recorder.record(trace.EVT_CACHE_MISS, host=1)
        with trace.request_scope() as b:
            recorder.record(trace.EVT_CACHE_HIT, host=2)
        assert [e.kind for e in recorder.events(a)] == [trace.EVT_CACHE_MISS]
        assert [e.kind for e in recorder.events(b)] == [trace.EVT_CACHE_HIT]
        assert len(recorder.events()) == 2

    def test_record_event_helper_noop_without_recorder(self):
        assert trace.get_recorder() is None
        trace.record_event(trace.EVT_RETRY, peer=1)  # must not raise


@pytest.fixture(scope="module")
def faulted_world():
    """A lossy world with one crashed peer, served under reliability."""
    config = SimulationConfig(
        user_count=80, delta=0.12, max_peers=8, k=4, request_count=10
    )
    dataset = uniform_points(80, seed=3)
    graph = build_wpg(dataset, config.delta, config.max_peers)
    return config, dataset, graph


class TestEndToEndAttribution:
    def _serve(self, faulted_world):
        config, dataset, graph = faulted_world
        network = PeerNetwork(
            failure_plan=FailurePlan(
                drop_probability=0.08, crashed=frozenset({7}), seed=11
            )
        )
        session = P2PCloakingSession.bootstrapped(
            dataset,
            graph,
            config,
            network=network,
            reliability=ReliabilityPolicy(
                max_attempts=4, crash_after=2, max_reforms=3
            ),
        )
        served = aborted = 0
        for host in range(12):
            if host == 7:
                continue
            try:
                session.request(host)
                served += 1
            except ProtocolAbort:
                aborted += 1
        return session, served, aborted

    def test_every_protocol_event_is_attributed(self, recorder, faulted_world):
        session, served, aborted = self._serve(faulted_world)
        events = recorder.events()
        stats = session.network.stats
        assert stats.unattributed == 0
        assert all(e.trace_id is not None for e in events)
        kinds = {}
        for event in events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        assert kinds[trace.EVT_REQUEST_START] == served + aborted
        assert kinds[trace.EVT_REQUEST_END] == served + aborted
        assert kinds[trace.EVT_MESSAGE] == stats.sent
        assert kinds.get(trace.EVT_RETRY, 0) == session.transport.retries
        assert aborted >= 1 and kinds[trace.EVT_ABORT] == aborted
        starts = [e for e in events if e.kind == trace.EVT_REQUEST_START]
        assert len({e.trace_id for e in starts}) == served + aborted

    def test_abort_events_name_their_request(self, recorder, faulted_world):
        _session, _served, aborted = self._serve(faulted_world)
        aborts = [
            e for e in recorder.events() if e.kind == trace.EVT_ABORT
        ]
        assert len(aborts) == aborted
        for event in aborts:
            assert event.fields["reason"]
            ends = [
                e
                for e in recorder.events(event.trace_id)
                if e.kind == trace.EVT_REQUEST_END
            ]
            assert len(ends) == 1
            assert ends[0].fields["status"] == f"abort:{event.fields['reason']}"


class TestJsonlAndCli:
    def _export(self, recorder, tmp_path):
        with trace.request_scope():
            recorder.record(trace.EVT_REQUEST_START, host=9)
            recorder.record(
                trace.EVT_MESSAGE,
                kind="verify_bound",
                sender=9,
                recipient=4,
                leg="request",
                dropped=False,
                deduped=False,
            )
            recorder.record(trace.EVT_REQUEST_END, host=9, status="ok")
        with trace.request_scope():
            recorder.record(trace.EVT_REQUEST_START, host=5)
            recorder.record(
                trace.EVT_REQUEST_END, host=5, status="abort:below_k"
            )
        return trace.export_jsonl(tmp_path / "t.jsonl")

    def test_round_trip_preserves_every_event(self, recorder, tmp_path):
        path = self._export(recorder, tmp_path)
        meta, spans, events = trace.load_jsonl(path)
        assert meta["schema"] == trace.TRACE_SCHEMA
        assert meta["events"] == len(events) == 5
        assert meta["events_dropped"] == 0
        original = recorder.events()
        for row, event in zip(events, original):
            assert row["trace_id"] == event.trace_id
            assert row["kind"] == event.kind
            assert row["fields"] == event.fields

    def test_load_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps({"type": "meta", "schema": "nope/v9"}) + "\n")
        with pytest.raises(ConfigurationError, match="schema"):
            trace.load_jsonl(bad)

    def test_summary_golden(self, recorder, tmp_path, capsys):
        path = self._export(recorder, tmp_path)
        assert trace_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert (
            "trace/v1: 2 trace(s), 5 event(s), 0 span record(s), "
            "0 dropped, 0 unattributed" in out
        )
        assert "abort:below_k" in out
        assert "slowest 2 trace(s):" in out

    def test_waterfall_golden(self, recorder, tmp_path, capsys):
        path = self._export(recorder, tmp_path)
        first = recorder.events()[0].trace_id
        assert trace_main([str(path), "--trace", str(first)]) == 0
        out = capsys.readouterr().out
        assert f"trace #{first}" in out
        assert "status ok" in out
        assert "· request_start  host=9" in out
        assert "messages by kind: verify_bound=1" in out

    def test_slowest_renders_some_waterfall(self, recorder, tmp_path, capsys):
        path = self._export(recorder, tmp_path)
        assert trace_main([str(path), "--slowest"]) == 0
        assert "trace #" in capsys.readouterr().out

    def test_json_mode_is_schema_tagged(self, recorder, tmp_path, capsys):
        path = self._export(recorder, tmp_path)
        assert trace_main([str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == trace.TRACE_SCHEMA
        assert len(payload["traces"]) == 2
        statuses = {t["status"] for t in payload["traces"]}
        assert statuses == {"ok", "abort:below_k"}

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        assert trace_main([str(tmp_path / "absent.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_spans_export_alongside_events(
        self, recorder, metrics, tmp_path
    ):
        with trace.request_scope():
            with obs.span(metric.SPAN_REQUEST):
                recorder.record(trace.EVT_CACHE_MISS, host=0)
        path = trace.export_jsonl(tmp_path / "t.jsonl")
        _meta, spans, events = trace.load_jsonl(path)
        assert [s["name"] for s in spans] == [metric.SPAN_REQUEST]
        # The span adopted the request scope's id: one correlated trace.
        assert spans[0]["trace_id"] == events[0]["trace_id"]


class TestExemplarsAndTails:
    def test_exemplars_attach_under_active_trace(self, recorder, metrics):
        hist = metrics.histogram("demo.latency", track_tails=True)
        with trace.request_scope() as tid:
            hist.observe(0.004)
        hist.observe(7.0)  # outside any scope: no exemplar
        snapshot = obs.snapshot(metrics)["histograms"]["demo.latency"]
        exemplars = snapshot["exemplars"]
        assert any(
            entry["trace_id"] == tid and entry["value"] == 0.004
            for entry in exemplars.values()
        )
        tails = snapshot["tails"]
        assert tails["exact"] is True
        assert tails["samples"] == 2
        assert tails["p99"]["value"] == 7.0
        assert tails["p50"]["trace_id"] == tid

    def test_span_stats_always_track_tails(self, recorder, metrics):
        with trace.request_scope() as tid:
            with obs.span(metric.SPAN_REQUEST):
                pass
        tails = obs.snapshot(metrics)["spans"][metric.SPAN_REQUEST]["tails"]
        assert tails["exact"] is True
        assert tails["p99"]["trace_id"] == tid

    def test_report_renders_tail_latencies(
        self, recorder, metrics, tmp_path, capsys
    ):
        with trace.request_scope():
            with obs.span(metric.SPAN_REQUEST):
                pass
        snapshot_path = tmp_path / "snap.json"
        obs.write_snapshot(snapshot_path, registry=metrics)
        assert report_main([str(snapshot_path)]) == 0
        out = capsys.readouterr().out
        assert "tail latencies" in out
        assert "p99" in out and "trace #" in out

    def test_conflicting_bounds_rejected(self, metrics):
        metrics.histogram("demo.h", bounds=(1.0, 2.0))
        metrics.histogram("demo.h", bounds=(1.0, 2.0))  # identical: fine
        with pytest.raises(ConfigurationError, match="bounds"):
            metrics.histogram("demo.h", bounds=(1.0, 3.0))

    def test_reservoir_overflow_marks_inexact(self, metrics):
        from repro.obs.registry import RESERVOIR_CAPACITY

        hist = metrics.histogram("demo.big", track_tails=True)
        for index in range(RESERVOIR_CAPACITY + 10):
            hist.observe(float(index))
        tails = hist.tails()
        assert tails["exact"] is False
        assert tails["samples"] == RESERVOIR_CAPACITY
