"""The randomized fault-matrix invariant suite (ISSUE 3 tentpole tests).

A seeded sweep over (drop_probability x crashed-peer sets x k): every
combination must end in one of exactly two outcomes —

* a **correct** cloak: cluster of >= k members containing the host, a
  region covering the host, never undersized; or
* a **clean** :class:`~repro.network.reliability.ProtocolAbort` with a
  typed reason from the fixed vocabulary.

Hangs, undersized clusters and untyped failures are all test failures.
On top of the outcome dichotomy, every combination must *reconcile*: the
network's message counters against the failure plan's decision audit,
the obs counters against the transport's own tallies, and the devices'
disclosure ledgers against the designed one-bit-per-hypothesis leakage
(retransmissions answered from the replay cache, never recomputed).

``REPRO_FAULT_MATRIX=smoke`` shrinks the sweep for quick CI jobs; the
full matrix (the default) covers >= 50 combinations.
"""

import os

import pytest

from repro import obs
from repro.config import SimulationConfig
from repro.cloaking.p2p_engine import P2PCloakingSession
from repro.datasets import uniform_points
from repro.graph.build import build_wpg
from repro.network.failures import FailurePlan
from repro.network.node import populate_network
from repro.network.reliability import (
    ABORT_REASONS,
    ProtocolAbort,
    ReliabilityPolicy,
)
from repro.network.simulator import PeerNetwork
from repro.obs import names as metric
from repro.obs.registry import MetricsRegistry

_SMOKE = os.environ.get("REPRO_FAULT_MATRIX", "").lower() == "smoke"

#: The hosts each combination serves; never in any crash set.
HOSTS = (3, 41)

if _SMOKE:
    DROPS = (0.0, 0.15)
    CRASH_SETS = (frozenset(), frozenset({10, 50, 90}))
    KS = (5,)
    SEEDS = (11,)
else:
    DROPS = (0.0, 0.05, 0.15, 0.30)
    CRASH_SETS = (
        frozenset(),
        frozenset({10}),
        frozenset({10, 50, 90}),
    )
    KS = (3, 5, 8)
    SEEDS = (11, 23)

MATRIX = [
    pytest.param(
        drop, crashed, k, seed,
        id=f"drop{drop}-crash{len(crashed)}-k{k}-seed{seed}",
    )
    for drop in DROPS
    for crashed in CRASH_SETS
    for k in KS
    for seed in SEEDS
]


def _policy(seed: int) -> ReliabilityPolicy:
    return ReliabilityPolicy(
        max_attempts=6, crash_after=2, max_reforms=10, seed=seed
    )


@pytest.fixture(scope="module")
def world():
    ds = uniform_points(300, seed=21)
    graph = build_wpg(ds, delta=0.09, max_peers=8)
    return ds, graph


def _run_combo(world, drop, crashed, k, seed):
    """One fault-matrix cell: serve every host, collect every ledger."""
    ds, graph = world
    plan = FailurePlan(drop_probability=drop, crashed=crashed, seed=seed)
    network = PeerNetwork(plan)
    devices = populate_network(network, graph, list(ds.points))
    session = P2PCloakingSession(
        network, graph, ds, SimulationConfig(k=k),
        reliability=_policy(seed),
    )
    outcomes = []
    obs.enable(MetricsRegistry())
    try:
        for host in HOSTS:
            try:
                outcomes.append(("ok", host, session.request(host)))
            except ProtocolAbort as exc:
                outcomes.append(("abort", host, exc))
        counters = obs.snapshot()["counters"]
    finally:
        obs.disable()
    return plan, network, devices, session, outcomes, counters


def test_matrix_covers_fifty_combinations():
    if _SMOKE:
        pytest.skip("smoke matrix is intentionally small")
    assert len(MATRIX) >= 50


@pytest.mark.parametrize("drop,crashed,k,seed", MATRIX)
def test_fault_matrix_invariants(world, drop, crashed, k, seed):
    ds, _graph = world
    plan, network, devices, session, outcomes, counters = _run_combo(
        world, drop, crashed, k, seed
    )
    transport = session.transport
    stats = network.stats

    # --- outcome dichotomy: correct cloak or typed clean abort -----------
    aborts = 0
    for status, host, payload in outcomes:
        if status == "ok":
            result = payload
            assert result.cluster.size >= k
            assert host in result.cluster.members
            assert result.region.anonymity >= k
            assert result.region.rect.contains(ds[host])
            # Degradation never hands out an undersized cloak: the
            # region's anonymity counts bounding *survivors*.
            assert result.region.anonymity <= result.cluster.size
        else:
            aborts += 1
            exc = payload
            assert exc.reason in ABORT_REASONS
            assert exc.host == host
            # Evicted peers were either planned crashes or loss victims.
            assert exc.evicted <= set(devices)

    # --- network counters reconcile with the failure-plan audit ----------
    assert stats.dropped == plan.drop_decisions + stats.crash_dropped
    assert plan.deliveries() == stats.sent - stats.dropped
    assert stats.crash_dropped >= 0
    if drop == 0.0 and not crashed:
        assert stats.dropped == 0 and aborts == 0

    # --- obs counters reconcile with the transport and the plan ----------
    assert counters.get(metric.NETWORK_MESSAGES_SENT, 0.0) == stats.sent
    assert counters.get(metric.NETWORK_MESSAGES_DROPPED, 0.0) == stats.dropped
    assert counters.get(metric.NETWORK_DEDUP_REPLAYS, 0.0) == stats.deduped
    assert counters.get(metric.NETWORK_RETRIES, 0.0) == transport.retries
    assert counters.get(metric.PROTOCOL_ABORTS, 0.0) == aborts
    assert counters.get(metric.NETWORK_PEERS_SUSPECTED, 0.0) == len(
        transport.suspected
    )
    backoff = counters.get(metric.NETWORK_BACKOFF_SECONDS, 0.0)
    assert abs(backoff - transport.simulated_delay) < 1e-9
    assert (transport.retries == 0) == (transport.simulated_delay == 0.0)

    # --- non-exposure: disclosure never exceeds the designed leakage -----
    replies = sum(
        count
        for kind, count in stats.by_kind.items()
        if kind.endswith(":reply")
    )
    invocations = sum(
        d.adjacency_invocations + d.verify_invocations
        for d in devices.values()
    )
    # Every recorded reply is one handler computation or one replay from
    # the dedup cache — retransmissions never recompute an answer.
    assert replies == invocations + stats.deduped
    for device in devices.values():
        if device.user_id in crashed:
            # A dead device computes nothing and discloses nothing.
            assert device.adjacency_invocations == 0
            assert device.verify_invocations == 0
            assert device.questions_answered == frozenset()
        for question in device.questions_answered:
            axis, sign, _bound = question
            assert axis in (0, 1) and sign in (-1.0, 1.0)
        # One bit per distinct hypothesis: a device never answers more
        # distinct questions than it ran the verify handler.
        assert len(device.questions_answered) <= max(
            device.verify_invocations, 0
        )

    # --- degradation bookkeeping ----------------------------------------
    assert session.evicted <= set(devices)
    assert transport.suspected >= session.evicted & transport.suspected
    evictions = counters.get(metric.CLUSTERING_EVICTIONS, 0.0)
    assert evictions == 0 or session.evicted


@pytest.mark.parametrize(
    "drop,crashed,k,seed",
    [
        pytest.param(0.15, frozenset({10, 50, 90}), 5, 11, id="replay-lossy"),
        pytest.param(0.30, frozenset({10}), 8, 23, id="replay-harsh"),
    ],
)
def test_fault_matrix_is_deterministic(world, drop, crashed, k, seed):
    """The same cell replayed from scratch lands on the same outcome."""

    def signature():
        _plan, _net, _devices, _session, outcomes, _counters = _run_combo(
            world, drop, crashed, k, seed
        )
        return [
            (status, host, payload.region.rect)
            if status == "ok"
            else (status, host, payload.reason)
            for status, host, payload in outcomes
        ]

    assert signature() == signature()


def test_crashed_quorum_aborts_not_hangs(world):
    """Crash the host's whole neighbourhood: a clean below-k abort."""
    ds, graph = world
    probe = P2PCloakingSession.bootstrapped(
        ds, graph, SimulationConfig(k=5)
    )
    members = probe.request(3).cluster.members
    crashed = frozenset(members - {3})
    plan = FailurePlan(crashed=crashed)
    network = PeerNetwork(plan)
    populate_network(network, graph, list(ds.points))
    session = P2PCloakingSession(
        network, graph, ds, SimulationConfig(k=299),
        reliability=_policy(7),
    )
    with pytest.raises(ProtocolAbort) as aborted:
        session.request(3)
    assert aborted.value.reason in ABORT_REASONS
    assert session.registry.assigned_count == 0
