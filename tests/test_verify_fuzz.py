"""The fuzz CLI end to end, in process: exit codes, repros, replay."""

from __future__ import annotations

import json

import pytest

from repro.verify.fuzz import main
from repro.verify.invariants import _REGISTRY, invariant, registered_invariants
from repro.verify.worlds import random_world


class TestCleanRuns:
    def test_small_fuzz_exits_zero(self, tmp_path, capsys):
        repro_dir = tmp_path / "failures"
        code = main(
            ["--worlds", "4", "--seed", "0", "--repro-dir", str(repro_dir)]
        )
        assert code == 0
        assert not repro_dir.exists()  # no failures, no directory
        out = capsys.readouterr().out
        assert "4 worlds" in out and "0 failing" in out

    def test_verbose_prints_per_world_lines(self, tmp_path, capsys):
        code = main(
            [
                "--worlds",
                "2",
                "--seed",
                "0",
                "--verbose",
                "--repro-dir",
                str(tmp_path / "failures"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("world seed=") == 2

    def test_invariant_filter(self, tmp_path, capsys):
        code = main(
            [
                "--worlds",
                "2",
                "--seed",
                "3",
                "--invariant",
                "k-anonymity",
                "--invariant",
                "wpg-fast-scalar-equal",
                "--repro-dir",
                str(tmp_path / "failures"),
            ]
        )
        assert code == 0


class TestCLIValidation:
    def test_list_invariants(self, capsys):
        assert main(["--list-invariants"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert list(registered_invariants()) == out

    def test_unknown_invariant_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["--invariant", "no-such-invariant"])
        assert excinfo.value.code == 2


class TestFailurePath:
    """Inject a failing invariant to drive the repro-dump machinery."""

    def test_failure_dumps_repro_and_exits_nonzero(self, tmp_path, capsys):
        repro_dir = tmp_path / "failures"

        @invariant("test-synthetic-failure")
        def _fail(run):
            return ["synthetic: always fails"]

        try:
            code = main(
                [
                    "--worlds",
                    "1",
                    "--seed",
                    "0",
                    "--invariant",
                    "test-synthetic-failure",
                    "--repro-dir",
                    str(repro_dir),
                ]
            )
            assert code == 1
            repro = repro_dir / "world-0.json"
            assert repro.exists()
            payload = json.loads(repro.read_text())
            assert payload["violations"] == [
                {
                    "invariant": "test-synthetic-failure",
                    "detail": "synthetic: always fails",
                }
            ]
            assert "--replay" in payload["replay"]
            # The dumped world is exactly the seed-0 draw: replayable.
            from repro.verify.worlds import World

            assert World.from_dict(payload["world"]) == random_world(0)

            # Replaying the repro with the bad invariant still fails...
            code = main(
                [
                    "--replay",
                    str(repro),
                    "--invariant",
                    "test-synthetic-failure",
                    "--repro-dir",
                    str(tmp_path / "replay-failures"),
                ]
            )
            assert code == 1
        finally:
            del _REGISTRY["test-synthetic-failure"]

        # ...and with the real invariants only, the same world is clean.
        code = main(
            [
                "--replay",
                str(repro),
                "--repro-dir",
                str(tmp_path / "replay-clean"),
            ]
        )
        assert code == 0
        assert not (tmp_path / "replay-clean").exists()
        out = capsys.readouterr().out
        assert "FAIL world seed=0" in out
