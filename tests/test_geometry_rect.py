"""Unit tests for repro.geometry.rect."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.geometry.rect import Rect

coords = st.floats(min_value=-100, max_value=100, allow_nan=False)
points = st.builds(Point, coords, coords)
point_lists = st.lists(points, min_size=1, max_size=20)


def rects():
    return st.builds(
        lambda x1, x2, y1, y2: Rect(min(x1, x2), max(x1, x2), min(y1, y2), max(y1, y2)),
        coords, coords, coords, coords,
    )


class TestConstruction:
    def test_inverted_raises(self):
        with pytest.raises(ValueError):
            Rect(1.0, 0.0, 0.0, 1.0)

    def test_degenerate_allowed(self):
        r = Rect(0.5, 0.5, 0.0, 1.0)
        assert r.area == 0.0
        assert r.width == 0.0

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.from_points([])

    def test_from_center(self):
        r = Rect.from_center(Point(0.5, 0.5), 0.2, 0.4)
        assert r.x_min == pytest.approx(0.4)
        assert r.y_max == pytest.approx(0.7)

    def test_from_center_negative_raises(self):
        with pytest.raises(ValueError):
            Rect.from_center(Point(0, 0), -1.0, 1.0)

    def test_unit_square(self):
        assert Rect.unit_square().area == 1.0

    @given(point_lists)
    def test_from_points_contains_all(self, pts):
        box = Rect.from_points(pts)
        assert all(box.contains(p) for p in pts)

    @given(point_lists)
    def test_from_points_is_tight(self, pts):
        box = Rect.from_points(pts)
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        assert box.x_min == min(xs) and box.x_max == max(xs)
        assert box.y_min == min(ys) and box.y_max == max(ys)


class TestMeasures:
    def test_area_perimeter(self):
        r = Rect(0.0, 2.0, 0.0, 3.0)
        assert r.area == 6.0
        assert r.perimeter == 10.0

    def test_center(self):
        assert Rect(0.0, 2.0, 0.0, 4.0).center == Point(1.0, 2.0)

    def test_diagonal(self):
        assert Rect(0.0, 3.0, 0.0, 4.0).diagonal == 5.0


class TestPredicates:
    def test_contains_boundary(self):
        r = Rect(0.0, 1.0, 0.0, 1.0)
        assert r.contains(Point(0.0, 0.0))
        assert r.contains(Point(1.0, 1.0))
        assert not r.contains(Point(1.0001, 0.5))

    def test_contains_rect(self):
        outer = Rect(0.0, 1.0, 0.0, 1.0)
        assert outer.contains_rect(Rect(0.2, 0.8, 0.2, 0.8))
        assert not outer.contains_rect(Rect(0.2, 1.2, 0.2, 0.8))

    def test_intersects_touching_edges(self):
        a = Rect(0.0, 1.0, 0.0, 1.0)
        b = Rect(1.0, 2.0, 0.0, 1.0)
        assert a.intersects(b)

    def test_disjoint(self):
        a = Rect(0.0, 1.0, 0.0, 1.0)
        b = Rect(1.5, 2.0, 0.0, 1.0)
        assert not a.intersects(b)
        assert a.intersection(b) is None

    @given(rects(), rects())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)


class TestCombinators:
    def test_union_covers_both(self):
        a = Rect(0.0, 1.0, 0.0, 1.0)
        b = Rect(2.0, 3.0, -1.0, 0.5)
        u = a.union(b)
        assert u.contains_rect(a) and u.contains_rect(b)

    @given(rects(), rects())
    def test_intersection_inside_both(self, a, b):
        overlap = a.intersection(b)
        if overlap is not None:
            assert a.contains_rect(overlap)
            assert b.contains_rect(overlap)

    def test_expanded(self):
        r = Rect(0.0, 1.0, 0.0, 1.0).expanded(0.5)
        assert r == Rect(-0.5, 1.5, -0.5, 1.5)

    def test_expanded_negative_too_big_raises(self):
        with pytest.raises(ValueError):
            Rect(0.0, 1.0, 0.0, 1.0).expanded(-0.6)

    def test_clipped_to(self):
        r = Rect(-0.5, 1.5, 0.2, 0.8).clipped_to(Rect.unit_square())
        assert r == Rect(0.0, 1.0, 0.2, 0.8)

    def test_clipped_disjoint_raises(self):
        with pytest.raises(ValueError):
            Rect(2.0, 3.0, 2.0, 3.0).clipped_to(Rect.unit_square())

    def test_min_distance_inside_zero(self):
        assert Rect(0.0, 1.0, 0.0, 1.0).min_distance_to(Point(0.5, 0.5)) == 0.0

    def test_min_distance_corner(self):
        assert Rect(0.0, 1.0, 0.0, 1.0).min_distance_to(Point(4.0, 5.0)) == 5.0
