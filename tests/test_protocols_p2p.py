"""Message-level protocol tests: clustering and bounding over the network."""

import pytest

from repro.bounding.p2p import p2p_upper_bound
from repro.bounding.policies import LinearPolicy
from repro.clustering.distributed import DistributedClustering
from repro.clustering.protocol import P2PClusteringProtocol
from repro.datasets import uniform_points
from repro.errors import ClusteringError, ProtocolError
from repro.graph.build import build_wpg
from repro.network.failures import FailurePlan
from repro.network.node import populate_network
from repro.network.simulator import PeerNetwork


@pytest.fixture(scope="module")
def world():
    ds = uniform_points(300, seed=21)
    graph = build_wpg(ds, delta=0.09, max_peers=8)
    return ds, graph


@pytest.fixture()
def clean_network(world):
    _ds, graph = world
    net = PeerNetwork()
    populate_network(net, graph, list(world[0].points))
    return net


class TestP2PClustering:
    def test_matches_analytic_result(self, world, clean_network):
        _ds, graph = world
        analytic = DistributedClustering(graph, 6).request(3)
        protocol = P2PClusteringProtocol(clean_network, graph, 6)
        report = protocol.request(3)
        assert report.result.members == analytic.members
        assert report.result.connectivity == analytic.connectivity

    def test_fetch_count_equals_involved(self, world, clean_network):
        _ds, graph = world
        analytic = DistributedClustering(graph, 6).request(3)
        protocol = P2PClusteringProtocol(clean_network, graph, 6)
        report = protocol.request(3)
        assert report.adjacency_fetches == analytic.involved
        # Two messages (request + reply) per fetch.
        assert report.messages_sent == 2 * report.adjacency_fetches

    def test_cached_request_sends_nothing(self, world, clean_network):
        _ds, graph = world
        protocol = P2PClusteringProtocol(clean_network, graph, 6)
        first = protocol.request(3)
        member = next(iter(first.result.members - {3}))
        again = protocol.request(member)
        assert again.result.from_cache
        assert again.messages_sent == 0

    def test_unknown_host_raises(self, world, clean_network):
        _ds, graph = world
        protocol = P2PClusteringProtocol(clean_network, graph, 6)
        with pytest.raises(ClusteringError):
            protocol.request(9999)

    def test_lossy_network_with_retries_matches(self, world):
        ds, graph = world
        net = PeerNetwork(FailurePlan(drop_probability=0.25, seed=5))
        populate_network(net, graph, list(ds.points))
        analytic = DistributedClustering(graph, 6).request(3)
        protocol = P2PClusteringProtocol(net, graph, 6, retries=30)
        report = protocol.request(3)
        assert report.result.members == analytic.members
        assert report.messages_dropped > 0

    def test_dead_peer_aborts_cleanly(self, world):
        ds, graph = world
        analytic = DistributedClustering(graph, 6).request(3)
        victim = next(iter(analytic.members - {3}))
        net = PeerNetwork(FailurePlan(crashed=[victim]))
        populate_network(net, graph, list(ds.points))
        protocol = P2PClusteringProtocol(net, graph, 6)
        with pytest.raises(ProtocolError):
            protocol.request(3)
        # Nothing half-registered.
        assert protocol.registry.assigned_count == 0


class TestP2PBounding:
    def test_bound_covers_members(self, world, clean_network):
        ds, _graph = world
        members = [3, 10, 25, 40]
        report = p2p_upper_bound(
            clean_network,
            host=3,
            members=members,
            axis=0,
            sign=1.0,
            start=ds[3].x,
            policy=LinearPolicy(0.05),
        )
        assert report.outcome.bound >= max(ds[m].x for m in members)
        assert report.unresolved == frozenset()

    def test_lower_bound_via_negation(self, world, clean_network):
        ds, _graph = world
        members = [3, 10, 25, 40]
        report = p2p_upper_bound(
            clean_network,
            host=3,
            members=members,
            axis=1,
            sign=-1.0,
            start=-ds[3].y,
            policy=LinearPolicy(0.05),
        )
        assert -report.outcome.bound <= min(ds[m].y for m in members)

    def test_messages_exclude_host_self_checks(self, world, clean_network):
        ds, _graph = world
        members = [3, 10]
        report = p2p_upper_bound(
            clean_network, 3, members, 0, 1.0, ds[3].x, LinearPolicy(0.05)
        )
        # Host verifications are local: at most one message per round for
        # the single remote member.
        assert report.outcome.messages <= report.outcome.iterations + 1

    def test_drops_are_conservative(self, world):
        ds, graph = world
        net = PeerNetwork(FailurePlan(drop_probability=0.3, seed=13))
        populate_network(net, graph, list(ds.points))
        members = [3, 10, 25, 40]
        report = p2p_upper_bound(
            net, 3, members, 0, 1.0, ds[3].x, LinearPolicy(0.03), retries=0
        )
        # Even with drops the final bound still covers everyone.
        assert report.outcome.bound >= max(ds[m].x for m in members)

    def test_crashed_member_reported_unresolved(self, world):
        ds, graph = world
        net = PeerNetwork(FailurePlan(crashed=[25]))
        populate_network(net, graph, list(ds.points))
        report = p2p_upper_bound(
            net, 3, [3, 10, 25], 0, 1.0, ds[3].x, LinearPolicy(0.05)
        )
        assert report.unresolved == frozenset({25})
        # The live members are still correctly bounded.
        assert report.outcome.bound >= max(ds[m].x for m in (3, 10))

    def test_bad_direction_rejected(self, world, clean_network):
        with pytest.raises(Exception):
            p2p_upper_bound(
                clean_network, 3, [3], 2, 1.0, 0.0, LinearPolicy(0.05)
            )

    def test_empty_members_rejected(self, world, clean_network):
        with pytest.raises(Exception):
            p2p_upper_bound(clean_network, 3, [], 0, 1.0, 0.0, LinearPolicy(0.05))
