"""Tests for the lock manager and concurrent cloaking coordination."""

import pytest

from repro.clustering.distributed import DistributedClustering
from repro.datasets import uniform_points
from repro.errors import ProtocolError
from repro.graph.build import build_wpg
from repro.network.concurrency import (
    ConcurrentCloakingCoordinator,
    LockManager,
    run_concurrent_requests,
)


class TestLockManager:
    def test_acquire_and_release(self):
        locks = LockManager()
        assert locks.acquire_all(1, [5, 6, 7]) is None
        assert locks.holder(6) == 1
        locks.release_all(1)
        assert locks.holder(6) is None
        assert locks.locked_count == 0

    def test_conflict_reports_blocker_and_rolls_back(self):
        locks = LockManager()
        locks.acquire_all(1, [5, 6])
        assert locks.acquire_all(2, [4, 6, 9]) == 1
        # Nothing of host 2's partial acquisition remains.
        assert locks.holder(4) is None
        assert locks.holder(9) is None

    def test_reentrant_for_same_owner(self):
        locks = LockManager()
        locks.acquire_all(1, [5, 6])
        assert locks.acquire_all(1, [6, 7]) is None
        assert locks.holder(7) == 1

    def test_ordered_acquisition_no_deadlock(self):
        """Two owners requesting overlapping sets in opposite orders:
        ordered acquisition means one wins outright, never a deadlock."""
        locks = LockManager()
        assert locks.acquire_all(1, [9, 2, 5]) is None
        blocker = locks.acquire_all(2, [5, 9, 11])
        assert blocker == 1
        locks.release_all(1)
        assert locks.acquire_all(2, [5, 9, 11]) is None


class TestConcurrentCoordination:
    @pytest.fixture(scope="class")
    def world(self):
        ds = uniform_points(400, seed=31)
        graph = build_wpg(ds, delta=0.08, max_peers=8)
        return graph

    def test_batch_all_terminate(self, world):
        clustering = DistributedClustering(world, 5)
        hosts = [0, 1, 2, 3, 4, 5, 50, 100, 150, 200]
        outcomes = run_concurrent_requests(clustering, hosts)
        assert len(outcomes) == len(hosts)
        for outcome in outcomes:
            assert (outcome.result is not None) or (outcome.error is not None)

    def test_no_user_in_two_clusters(self, world):
        clustering = DistributedClustering(world, 5)
        hosts = list(range(0, 60, 2))
        run_concurrent_requests(clustering, hosts)
        clustering.registry.check_reciprocity()

    def test_conflicting_neighbors_resolve(self, world):
        """Adjacent hosts propose overlapping clusters simultaneously;
        exactly one commits the shared users, the other restarts."""
        clustering = DistributedClustering(world, 5)
        solo = DistributedClustering(world, 5)
        base = solo.request(0)
        conflicted_host = next(iter(base.members - {0}))
        outcomes = run_concurrent_requests(clustering, [0, conflicted_host])
        assert all(o.result is not None for o in outcomes)
        # Either the second was served from the first's cluster (cache)
        # or it built a disjoint one; both satisfy reciprocity.
        clustering.registry.check_reciprocity()

    def test_restart_budget_respected(self, world):
        clustering = DistributedClustering(world, 5)
        coordinator = ConcurrentCloakingCoordinator(clustering, max_restarts=0)
        outcomes = coordinator.run_batch([0, 1])
        assert all(
            (o.result is not None) or (o.error is not None) for o in outcomes
        )

    def test_bad_budget_rejected(self, world):
        with pytest.raises(ProtocolError):
            ConcurrentCloakingCoordinator(
                DistributedClustering(world, 5), max_restarts=-1
            )

    def test_impossible_host_gets_clean_error(self):
        from repro.graph.wpg import WeightedProximityGraph

        g = WeightedProximityGraph.from_edges([(0, 1, 1.0)])
        clustering = DistributedClustering(g, 3)
        (outcome,) = run_concurrent_requests(clustering, [0])
        assert outcome.result is None
        assert outcome.error is not None
