"""Tests for cluster-isolation (Property 4.1, Theorem 4.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.centralized import strict_partition
from repro.clustering.isolation import (
    border_condition_holds,
    is_cluster_isolated,
    isolation_counterexample,
    smallest_valid_cluster_rule,
)
from repro.clustering.knn import KNNClustering
from repro.graph.generators import random_weighted_graph, small_world_graph
from repro.graph.wpg import WeightedProximityGraph


class TestRule:
    def test_smallest_valid_cluster_rule(self, two_blobs_graph):
        assert smallest_valid_cluster_rule(two_blobs_graph, 0, 4) == {0, 1, 2, 3}

    def test_rule_none_when_impossible(self):
        g = WeightedProximityGraph.from_edges([(0, 1, 1.0)])
        assert smallest_valid_cluster_rule(g, 0, 5) is None


class TestIsolation:
    def test_blob_cluster_is_isolated(self, two_blobs_graph):
        """Removing blob A leaves blob B's clusters untouched."""
        assert is_cluster_isolated(two_blobs_graph, {0, 1, 2, 3}, 4)

    def test_fig5_stranding_detected(self):
        """Fig. 5: removing a cluster strands vertex g.

        Vertex 5 only connects through the cluster {0..4}; removing the
        cluster leaves it without any valid 2-cluster.
        """
        g = WeightedProximityGraph()
        for i in range(4):
            g.add_edge(i, i + 1, 1.0)
        g.add_edge(0, 4, 1.0)
        g.add_edge(2, 5, 3.0)  # the stranded vertex hangs off the cluster
        cluster = {0, 1, 2, 3, 4}
        assert not is_cluster_isolated(g, cluster, 2)
        assert isolation_counterexample(g, cluster, 2) == 5

    def test_witness_restriction(self, two_blobs_graph):
        assert (
            isolation_counterexample(
                two_blobs_graph, {0, 1, 2, 3}, 4, witnesses=[4, 5]
            )
            is None
        )

    def test_knn_not_cluster_isolated(self):
        """The paper's core criticism: kNN clusters break other vertices.

        Build a line where a kNN cluster for the middle host splits the
        rest so badly their smallest valid clusters change.
        """
        g = WeightedProximityGraph()
        weights = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        for i, w in enumerate(weights):
            g.add_edge(i, i + 1, w)
        algo = KNNClustering(g, 3)
        cluster = set(algo.request(3).members)
        # Removing the middle cluster must change someone's options.
        assert not is_cluster_isolated(g, cluster, 3)


class TestTheorem44:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 400), k=st.integers(2, 4))
    def test_property_border_condition_implies_isolation(self, seed, k):
        """Theorem 4.4 as an executable statement.

        For every smallest valid t-connectivity cluster (a strict
        partition piece at its own level) whose external border vertices
        all have valid t-clusters in the remaining WPG, removal must not
        change any other vertex's smallest valid cluster.
        """
        graph = random_weighted_graph(18, edge_probability=0.25, seed=seed)
        partition = strict_partition(graph, k)
        for cluster in partition.clusters:
            sub = graph.subgraph(cluster)
            t = max((e.weight for e in sub.edges()), default=0.0)
            if border_condition_holds(graph, cluster, t, k):
                assert is_cluster_isolated(graph, cluster, k), (
                    f"Theorem 4.4 violated for cluster {sorted(cluster)} "
                    f"at t={t} (seed={seed}, k={k})"
                )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 200))
    def test_property_strict_partition_clusters_mutually_isolated(self, seed):
        """Strict partition pieces are isolated w.r.t. each other.

        Removing one strict cluster never changes the *partition* of the
        rest: recomputing the strict partition on the remaining graph
        yields exactly the other pieces.
        """
        k = 3
        graph = small_world_graph(24, base_degree=4, rewire_probability=0.2, seed=seed)
        partition = strict_partition(graph, k)
        pieces = sorted(
            (sorted(c) for c in partition.all_groups()), key=lambda c: c[0]
        )
        for removed in list(partition.clusters)[:3]:
            rest = [v for v in graph.vertices() if v not in removed]
            again = strict_partition(graph.subgraph(rest), k)
            got = sorted(
                (sorted(c) for c in again.all_groups()), key=lambda c: c[0]
            )
            expected = [p for p in pieces if p[0] not in removed]
            assert got == expected
