"""Tests for the quadtree baseline and its reciprocity failure."""

import pytest

from repro.clustering.quadtree import (
    QuadtreeCloaking,
    effective_anonymity,
    reciprocity_violations,
)
from repro.datasets import uniform_points
from repro.datasets.base import PointDataset
from repro.errors import ClusteringError, ConfigurationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect


@pytest.fixture(scope="module")
def population():
    return uniform_points(300, seed=13)


class TestQuadrantDescent:
    def test_region_contains_host_and_k(self, population):
        cloaking = QuadtreeCloaking(population, 10)
        for host in (0, 57, 211):
            region = cloaking.region_for(host)
            assert region.contains(population[host])
            assert len(cloaking.anonymity_set(host)) >= 10

    def test_region_is_a_quadrant(self, population):
        """Every returned region is a dyadic quadrant of the unit square."""
        cloaking = QuadtreeCloaking(population, 10)
        region = cloaking.region_for(0)
        width = region.width
        assert width == region.height  # quadrants are square
        # The side is a power of 1/2 and the corners are aligned to it.
        import math

        depth = round(-math.log2(width))
        assert width == pytest.approx(0.5**depth)
        assert region.x_min / width == pytest.approx(round(region.x_min / width))

    def test_deeper_with_smaller_k(self, population):
        loose = QuadtreeCloaking(population, 50).region_for(0)
        tight = QuadtreeCloaking(population, 5).region_for(0)
        assert tight.area <= loose.area
        assert loose.contains_rect(tight)

    def test_k_equals_population_returns_root(self, population):
        cloaking = QuadtreeCloaking(population, len(population))
        assert cloaking.region_for(0) == Rect.unit_square()

    def test_stacked_points_bounded_by_depth(self):
        stacked = PointDataset([Point(0.3, 0.3)] * 10)
        cloaking = QuadtreeCloaking(stacked, 5, max_depth=6)
        region = cloaking.region_for(0)
        assert region.width == pytest.approx(0.5**6)

    def test_validation(self, population):
        with pytest.raises(ConfigurationError):
            QuadtreeCloaking(population, 0)
        with pytest.raises(ConfigurationError):
            QuadtreeCloaking(population, 301)
        with pytest.raises(ConfigurationError):
            QuadtreeCloaking(population, 5, max_depth=0)
        with pytest.raises(ClusteringError):
            QuadtreeCloaking(population, 5).region_for(999)


class TestReciprocityFailure:
    def test_violations_exist_somewhere(self, population):
        """The classic attack: some host's quadrant members answer with a
        different (deeper) quadrant, shrinking the anonymity set."""
        cloaking = QuadtreeCloaking(population, 20)
        assert any(
            reciprocity_violations(cloaking, host, limit=1)
            for host in range(0, 300, 10)
        )

    def test_effective_anonymity_never_exceeds_set(self, population):
        cloaking = QuadtreeCloaking(population, 15)
        for host in range(0, 60, 7):
            assert effective_anonymity(cloaking, host) <= len(
                cloaking.anonymity_set(host)
            )

    def test_effective_anonymity_can_drop_below_k(self, population):
        """The attack's punchline: after discarding non-reciprocal members
        the adversary can be left with fewer than k candidates."""
        cloaking = QuadtreeCloaking(population, 20)
        assert any(
            effective_anonymity(cloaking, host) < 20
            for host in range(0, 300, 5)
        )

    def test_reciprocal_schemes_have_no_violations(self, population):
        """Contrast: the registry-based schemes are reciprocal by design
        (their check_reciprocity is exercised throughout the suite), and
        a host whose quadrant happens to be everyone's quadrant shows no
        violations either."""
        cloaking = QuadtreeCloaking(population, len(population))
        assert reciprocity_violations(cloaking, 0) == []
