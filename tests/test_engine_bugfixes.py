"""Regression coverage for the cloaking-engine correctness sweep.

Two defects fixed in the same PR as the cluster-tree fast path:

* ``_enforce_granularity`` solved its growth margin against the
  *unclipped* rectangle, so a region hugging a map corner or edge could
  exhaust its 64 analytic rounds and silently return ``area <
  min_area``.  The bisection fallback now guarantees the target; the
  property here drives corner/edge/interior seed rectangles.
* ``request_many``'s fast path fabricates the cached
  :class:`ClusterResult` instead of calling the phase-1 service — the
  batch parity test pins the full :class:`CloakingResult`, field for
  field, to what sequential :meth:`request` calls produce for every
  mode, cached and uncached hosts alike.
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.cloaking.engine import CloakingEngine
from repro.config import SimulationConfig
from repro.datasets import uniform_points
from repro.errors import ClusteringError
from repro.geometry.rect import Rect
from repro.graph.build import build_wpg_fast


def tiny_engine(min_area: float = 0.0, **kwargs) -> CloakingEngine:
    dataset = uniform_points(12, seed=2)
    config = SimulationConfig(user_count=12, delta=0.4, max_peers=5, k=2)
    graph = build_wpg_fast(dataset, config.delta, config.max_peers)
    return CloakingEngine(
        dataset, graph, config, min_area=min_area, **kwargs
    )


# -- granularity enforcement ---------------------------------------------------

unit_coord = st.floats(0.0, 1.0, allow_nan=False)


@st.composite
def seed_rects(draw) -> Rect:
    """Seed rectangles biased toward the corner/edge stall regime."""
    anchor = draw(
        st.sampled_from(
            ["corner00", "corner11", "corner01", "edge_x", "edge_y", "free"]
        )
    )
    w = draw(st.floats(0.0, 0.4, allow_nan=False))
    h = draw(st.floats(0.0, 0.4, allow_nan=False))
    if anchor == "corner00":
        return Rect(0.0, w, 0.0, h)
    if anchor == "corner11":
        return Rect(1.0 - w, 1.0, 1.0 - h, 1.0)
    if anchor == "corner01":
        return Rect(0.0, w, 1.0 - h, 1.0)
    if anchor == "edge_x":
        y = draw(st.floats(0.0, 1.0 - h, allow_nan=False))
        return Rect(0.0, w, y, y + h)
    if anchor == "edge_y":
        x = draw(st.floats(0.0, 1.0 - w, allow_nan=False))
        return Rect(x, x + w, 0.0, h)
    x = draw(st.floats(0.0, 1.0 - w, allow_nan=False))
    y = draw(st.floats(0.0, 1.0 - h, allow_nan=False))
    return Rect(x, x + w, y, y + h)


@given(
    region=seed_rects(),
    min_area=st.floats(0.001, 1.0, allow_nan=False),
)
def test_enforce_granularity_always_delivers_min_area(region, min_area):
    engine = tiny_engine(min_area=min_area)
    grown = engine._enforce_granularity(region)
    unit = Rect.unit_square()
    assert grown.area >= min_area  # the target, exactly — never silently less
    assert unit.contains_rect(grown)
    assert grown.contains_rect(region)


def test_corner_region_reaches_near_unit_target():
    # The historical stall: a degenerate rect at the origin corner with a
    # target near the whole map.  The analytic rounds clip on two sides
    # and converge below target; the bisection must finish the job.
    engine = tiny_engine(min_area=0.9)
    grown = engine._enforce_granularity(Rect(0.0, 1e-6, 0.0, 1e-6))
    assert grown.area >= 0.9
    assert Rect.unit_square().contains_rect(grown)


def test_zero_min_area_is_identity():
    engine = tiny_engine(min_area=0.0)
    region = Rect(0.2, 0.3, 0.4, 0.5)
    assert engine._enforce_granularity(region) == region


# -- request_many batch parity -------------------------------------------------


def serve_sequential(engine, hosts):
    results = []
    for host in hosts:
        try:
            results.append(engine.request(host))
        except ClusteringError as exc:
            results.append(str(exc))
    return results


def batch_with_fallback(engine, hosts):
    # request_many propagates the first failure, so feed it singly to
    # collect per-host outcomes on worlds with unservable hosts.
    results = []
    for host in hosts:
        try:
            results.extend(engine.request_many([host]))
        except ClusteringError as exc:
            results.append(str(exc))
    return results


def test_request_many_matches_sequential_field_for_field():
    hosts = [3, 7, 3, 1, 7, 11, 3]  # repeats hit the fabricated fast path
    for clustering in (None, "tree"):
        for mode in ("distributed", "centralized"):
            if clustering == "tree" and mode == "centralized":
                continue
            sequential_engine = tiny_engine(mode=mode, clustering=clustering)
            batch_engine = tiny_engine(mode=mode, clustering=clustering)
            expected = serve_sequential(sequential_engine, hosts)
            actual = batch_with_fallback(batch_engine, hosts)
            assert len(actual) == len(expected)
            for host, ours, reference in zip(hosts, actual, expected):
                assert type(ours) is type(reference), (mode, host)
                if isinstance(ours, str):
                    assert ours == reference, (mode, host)
                    continue
                # Field-for-field: the fabricated cached ClusterResult
                # must be indistinguishable from the service's own.
                assert ours.host == reference.host
                assert ours.cluster.host == reference.cluster.host
                assert ours.cluster.members == reference.cluster.members
                assert ours.cluster.involved == reference.cluster.involved
                assert (
                    ours.cluster.connectivity
                    == reference.cluster.connectivity
                )
                assert ours.cluster.from_cache == reference.cluster.from_cache
                assert ours.region == reference.region
                assert (
                    ours.clustering_messages == reference.clustering_messages
                )
                assert ours.bounding_messages == reference.bounding_messages
                assert ours.region_from_cache == reference.region_from_cache


def test_request_many_cached_hosts_equal_repeat_requests():
    engine = tiny_engine()
    hosts = [0, 4, 8]
    for host in hosts:
        engine.request(host)  # populate registry + region cache
    sequential = [engine.request(host) for host in hosts]
    batched = engine.request_many(hosts)
    assert batched == sequential  # frozen dataclasses: full equality
    for result in batched:
        assert result.region_from_cache
        assert result.cluster.from_cache
        assert result.cluster.involved == 0
        assert result.cluster.connectivity == 0.0
