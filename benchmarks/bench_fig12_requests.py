"""Figure 12: clustering performance under various request counts S."""

from conftest import BENCH_REQUESTS, record

from repro.experiments.fig12_requests import run_fig12


def test_fig12_requests(benchmark, setup, results_dir):
    s_values = tuple(
        max(BENCH_REQUESTS // 2, 10) * factor for factor in (1, 2, 4, 8)
    )
    result = benchmark.pedantic(
        run_fig12,
        kwargs={"setup": setup, "s_values": s_values},
        rounds=1,
        iterations=1,
    )
    record(results_dir, "fig12_requests", result.format())

    costs = result.comm_cost_series()
    sizes = result.cloaked_size_series()
    # Centralized cost is exactly (|D|-1)/S: halves as S doubles.
    central = costs["centralized t-conn"]
    assert abs(central[0] / central[-1] - 8.0) < 0.01
    # Distributed t-conn amortises: cost strictly drops with S.
    assert costs["t-conn"][-1] < costs["t-conn"][0]
    # kNN cannot amortise: flat-ish cost (no systematic drop of > 40%).
    assert costs["knn"][-1] > 0.6 * costs["knn"][0]
    # kNN's region size deteriorates with S; t-conn's stays flat
    # (cluster-isolation at work, paper Fig. 12b).
    assert sizes["knn"][-1] > 1.3 * sizes["knn"][0]
    tconn = sizes["t-conn"]
    assert max(tconn) < 1.3 * min(tconn)
