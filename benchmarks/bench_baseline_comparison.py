"""Extension: all four clustering schemes side by side.

Adds the coordinate-exposing hilbASR baseline (related work, Section II)
to the paper's three contenders.  hilbASR gets reciprocity by
construction and sees every coordinate — yet its *global* Hilbert
bucketing ignores local density, so consecutive curve buckets straddle
sparse gaps; the measured result is that distributed t-Conn produces
tighter regions while seeing no coordinates at all, strengthening the
paper's case.
"""

from conftest import BENCH_REQUESTS, record

from repro.analysis.reporting import format_table
from repro.experiments.harness import ALGORITHMS_EXTENDED, run_clustering_workload
from repro.experiments.workloads import sample_hosts


def test_four_way_comparison(benchmark, setup, results_dir):
    config = setup.base_config
    graph = setup.graph(config)
    hosts = sample_hosts(graph, config.k, BENCH_REQUESTS, seed=23)

    def run_all():
        return {
            algorithm: run_clustering_workload(
                setup, algorithm, config, hosts, graph=graph
            )
            for algorithm in ALGORITHMS_EXTENDED
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [
            algorithm,
            round(w.avg_comm_cost, 1),
            f"{w.avg_cloaked_area:.3e}",
            w.failures,
            "yes" if algorithm == "hilbert-asr" else "no",
        ]
        for algorithm, w in results.items()
    ]
    table = format_table(
        ["algorithm", "avg msgs", "avg area", "failures", "exposes coords"],
        rows,
    )
    record(results_dir, "baseline_comparison", table)

    # hilbASR buckets the whole population, so it never fails.
    hilbert = results["hilbert-asr"]
    assert hilbert.failures == 0
    tconn = results["t-conn"]
    # The headline: the non-exposure algorithm's regions are no larger
    # than the coordinate-exposing baseline's (its density-aware WPG
    # clusters beat global Hilbert bucketing on clustered data).
    assert tconn.avg_cloaked_area <= hilbert.avg_cloaked_area
    # And the amortised message cost is lower too (hilbASR pays |D|/S).
    assert tconn.avg_comm_cost < hilbert.avg_comm_cost
