"""Sharded service: saturation latency and the worker-count scaling curve.

Regenerates ``BENCH_service.json``: the same synthetic population is
served through :class:`~repro.service.CloakingService` at each worker
count (default 1, 2, 4) and three things are measured —

* a **cold sequential pass** over distinct clusterable hosts: every
  request clusters and bounds from scratch, so this is the cloak
  throughput number.  The full outcome transcript is captured and the
  ``sharded_equals_single`` gate requires it (plus the merged registry
  and region cache) to be bit-identical at every worker count;
* a **saturation pass** over the now-warm caches: a small pool of
  client threads issues requests back-to-back at maximum rate (closed
  loop at saturation — a true open loop at a fixed rate either idles or
  diverges on a shared box, while max-rate closed loop *is* the
  saturation point), recording per-request p50/p95/p99 latency and any
  typed overloads;
* a **churn pass**: a few full barrier ticks (drain → state sync →
  broadcast → reroute), timed per tick.

**Methodology on a 1-CPU container.**  Worker processes timeshare one
core, so wall-clock cannot show multicore scaling no matter how real
the parallelism is.  Each worker meters its own busy time per op
(``time.process_time``), and the headline metric is **capacity
throughput**: ``requests / max(per-worker busy CPU seconds)`` — the
makespan the fleet would have on dedicated cores, measured rather than
modelled, since the workers are real processes doing the real work.
Wall numbers and ``cpu_count`` are recorded alongside so a multi-core
runner can confirm the curve with wall clocks.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_service.py \
        --users 50000 --workers 1 2 4 --out BENCH_service.json

The output schema (``bench_service/v1``) puts the scaling summary at
the document root::

    {
      "schema": "bench_service/v1",
      "users": 50000, "cpu_count": ..., "requests": ..., ...
      "workers": [
        {"shards": 1, "cold": {...}, "saturation": {...}, "churn": {...}},
        ...
      ],
      "single": {"capacity_rps": ..., "latency_p95_ms": ...},
      "scaling": {"capacity_speedup_2": ..., "capacity_speedup_4": ...},
      "sharded_equals_single": true
    }

The sentinel gates ``scaling.capacity_speedup_*``,
``single.capacity_rps`` and ``single.latency_p95_ms``.  The script
itself exits nonzero when any transcript diverges from the single-worker
one (``sharded_equals_single`` — never waived), or when a capacity
speedup falls below its ``--gates`` threshold (waivable with
``--no-gate`` for tiny smoke populations).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import random
import sys
import threading
import time
from pathlib import Path

from repro.errors import ServiceOverload
from repro.service import CloakingService, ServiceSpec
from repro.service.shards import ShardMap, route_users

from bench_churn import scaled_delta

MAX_PEERS = 10
K = 5


def percentile(samples: list[float], q: float) -> float:
    """The q-quantile (0 < q <= 1) of ``samples`` by rank."""
    ranked = sorted(samples)
    index = max(0, math.ceil(q * len(ranked)) - 1)
    return ranked[index]


def pick_hosts(spec: ServiceSpec, count: int, max_shards: int) -> list[int]:
    """``count`` distinct clusterable hosts, stratified by owning slab.

    Requests route to the shard owning the host's *component anchor*, so
    a balanced benchmark stream must draw evenly across the slabs of the
    finest shard map measured — a naive id-ordered sample can land
    almost entirely on one worker and measure queueing, not cloaking.
    Within each slab the picks are evenly spaced; slabs short on
    clusterable hosts are topped up round-robin from the others.
    """
    from repro.experiments.workloads import clusterable_users
    from repro.service.spec import materialize

    dataset, graph, config = materialize(spec)
    pool = clusterable_users(graph, config.k)
    if len(pool) < count:
        raise SystemExit(
            f"population too sparse: only {len(pool)} clusterable users, "
            f"need {count} (lower --requests or raise --users)"
        )
    table = route_users(graph, dataset.points, ShardMap(max_shards, config.delta))
    buckets: dict[int, list[int]] = {}
    for host in pool:
        buckets.setdefault(table[int(host)], []).append(int(host))
    queues = []
    for slab in sorted(buckets):
        members = buckets[slab]
        step = max(1, len(members) // max(1, count // len(buckets)))
        queues.append(iter(members[::step] + members[1::step]))
    hosts: list[int] = []
    taken = set()
    while len(hosts) < count and queues:
        exhausted = []
        for queue in queues:
            host = next(queue, None)
            if host is None:
                exhausted.append(queue)
            elif host not in taken:
                taken.add(host)
                hosts.append(host)
                if len(hosts) == count:
                    break
        queues = [q for q in queues if q not in exhausted]
    return hosts


def cold_pass(service: CloakingService, hosts: list[int]) -> tuple[dict, list]:
    """Sequential cold serving: throughput + the equality transcript."""
    service.reset_worker_stats()
    t0 = time.perf_counter()
    transcript = [service.request(host) for host in hosts]
    wall = time.perf_counter() - t0
    busy = [s["busy_cpu"] for s in service.worker_stats()]
    makespan = max(busy)
    return (
        {
            "requests": len(hosts),
            "wall_seconds": round(wall, 4),
            "wall_rps": round(len(hosts) / wall, 1),
            "busy_cpu": [round(b, 4) for b in busy],
            "busy_cpu_max": round(makespan, 4),
            "capacity_rps": round(len(hosts) / makespan, 1),
        },
        transcript,
    )


def saturation_pass(
    service: CloakingService, hosts: list[int], requests: int, clients: int
) -> dict:
    """Max-rate closed-loop load from ``clients`` threads, warm caches."""
    latencies: list[float] = []
    overloads = 0
    lock = threading.Lock()
    cursor = iter(range(requests))

    def client() -> None:
        nonlocal overloads
        own: list[float] = []
        own_overloads = 0
        while True:
            with lock:
                index = next(cursor, None)
            if index is None:
                break
            host = hosts[index % len(hosts)]
            t0 = time.perf_counter()
            try:
                service.request(host)
            except ServiceOverload:
                own_overloads += 1
                continue
            own.append((time.perf_counter() - t0) * 1000.0)
        with lock:
            latencies.extend(own)
            overloads += own_overloads

    threads = [threading.Thread(target=client) for _ in range(clients)]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - t0
    return {
        "requests": requests,
        "clients": clients,
        "wall_seconds": round(wall, 4),
        "wall_rps": round(len(latencies) / wall, 1),
        "overloads": overloads,
        "latency_ms": {
            "p50": round(percentile(latencies, 0.50), 3),
            "p95": round(percentile(latencies, 0.95), 3),
            "p99": round(percentile(latencies, 0.99), 3),
            "max": round(max(latencies), 3),
        },
    }


def churn_pass(
    service: CloakingService, users: int, ticks: int, seed: int
) -> dict:
    """A few full churn barriers (drain, sync, broadcast, reroute)."""
    rng = random.Random(seed + 4099)
    movers = max(1, users // 100)
    tick_seconds = []
    halo = 0
    for _ in range(ticks):
        batch = [
            (user, rng.random(), rng.random())
            for user in rng.sample(range(users), movers)
        ]
        t0 = time.perf_counter()
        summary = service.apply_moves(batch)
        tick_seconds.append(time.perf_counter() - t0)
        halo += sum(summary["halo_refreshes"])
    return {
        "ticks": ticks,
        "movers_per_tick": movers,
        "seconds_per_tick": round(sum(tick_seconds) / len(tick_seconds), 4),
        "halo_refreshes": halo,
    }


def bench_worker_count(
    spec: ServiceSpec,
    shards: int,
    hosts: list[int],
    saturation: int,
    clients: int,
    ticks: int,
    seed: int,
) -> tuple[dict, tuple]:
    """One full measurement at ``shards`` workers.

    Returns the result entry plus the equality surface: (transcript,
    registry set, region map) — captured *before* the churn pass so
    every worker count is compared over identical state.
    """
    users = spec.source["synthetic"]["users"]
    with CloakingService(spec.with_shards(shards)) as service:
        cold, transcript = cold_pass(service, hosts)
        surface = (
            transcript,
            service.registry_clusters(),
            service.cached_regions(),
        )
        entry = {
            "shards": shards,
            "cold": cold,
            "saturation": saturation_pass(service, hosts, saturation, clients),
            "churn": churn_pass(service, users, ticks, seed),
        }
    return entry, surface


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=50_000)
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        help="worker counts for the scaling curve (default: 1 2 4)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=400,
        help="distinct cold requests per worker count (default: 400)",
    )
    parser.add_argument(
        "--saturation",
        type=int,
        default=1200,
        help="warm saturation requests per worker count (default: 1200)",
    )
    parser.add_argument(
        "--clients", type=int, default=4, help="client threads (default: 4)"
    )
    parser.add_argument(
        "--ticks", type=int, default=2, help="churn barriers timed (default: 2)"
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--kind", choices=("california", "uniform"), default="california")
    parser.add_argument(
        "--delta-scale",
        type=float,
        default=0.5,
        help="multiplier on the churn bench's scaled delta (default: "
        "0.5 — at full scale the 50k california WPG percolates into one "
        "giant component, and a component is the routing unit: it is "
        "owned whole by a single worker, so nothing can scale)",
    )
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument(
        "--gates",
        type=float,
        nargs="*",
        default=[1.5, 2.5],
        help="minimum capacity speedup per non-single worker count, in "
        "order (default: 1.5 2.5 for workers 2 and 4)",
    )
    parser.add_argument(
        "--no-gate",
        action="store_true",
        help="skip the speedup gates (tiny smoke populations); the "
        "transcript-equality gate always applies",
    )
    args = parser.parse_args(argv)
    if args.workers[0] != 1 or sorted(set(args.workers)) != args.workers:
        parser.error("--workers must be ascending, distinct, starting at 1")

    delta = scaled_delta(args.users) * args.delta_scale
    spec = ServiceSpec.synthetic(
        users=args.users,
        seed=args.seed,
        kind=args.kind,
        delta=delta,
        max_peers=MAX_PEERS,
        k=K,
        shards=1,
    )
    hosts = pick_hosts(spec, args.requests, max(args.workers))

    entries: list[dict] = []
    surfaces: dict[int, tuple] = {}
    for shards in args.workers:
        entry, surfaces[shards] = bench_worker_count(
            spec, shards, hosts, args.saturation, args.clients,
            args.ticks, args.seed,
        )
        entries.append(entry)
        print(
            f"workers={shards}: cold {entry['cold']['capacity_rps']:,} "
            f"req/s capacity ({entry['cold']['wall_rps']:,} wall), warm "
            f"p95 {entry['saturation']['latency_ms']['p95']} ms, "
            f"{entry['saturation']['overloads']} overloads, churn "
            f"{entry['churn']['seconds_per_tick']}s/tick"
        )

    equal = all(surfaces[n] == surfaces[1] for n in args.workers)
    single = entries[0]
    scaling = {
        f"capacity_speedup_{entry['shards']}": round(
            entry["cold"]["capacity_rps"] / single["cold"]["capacity_rps"], 2
        )
        for entry in entries[1:]
    }
    payload = {
        "schema": "bench_service/v1",
        "users": args.users,
        "seed": args.seed,
        "kind": args.kind,
        "delta": delta,
        "k": K,
        "max_peers": MAX_PEERS,
        "requests": args.requests,
        "cpu_count": os.cpu_count(),
        "workers": entries,
        "single": {
            "capacity_rps": single["cold"]["capacity_rps"],
            "latency_p95_ms": single["saturation"]["latency_ms"]["p95"],
        },
        "scaling": scaling,
        "sharded_equals_single": equal,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}: scaling {scaling}, equal={equal}")

    clean = equal
    if not equal:
        print(
            "GATE: sharded_equals_single is false — some worker count "
            "answered differently from the single engine"
        )
    if not args.no_gate:
        for entry, floor in zip(entries[1:], args.gates):
            speedup = scaling[f"capacity_speedup_{entry['shards']}"]
            if speedup < floor:
                print(
                    f"GATE: capacity speedup {speedup} at "
                    f"{entry['shards']} workers is below the {floor}x floor"
                )
                clean = False
    return 0 if clean else 1


if __name__ == "__main__":
    sys.exit(main())
