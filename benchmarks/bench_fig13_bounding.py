"""Figure 13: the four bounding algorithms under various k."""

from conftest import BENCH_REQUESTS, record

from repro.experiments.fig13_bounding import run_fig13


def test_fig13_bounding(benchmark, setup, results_dir):
    result = benchmark.pedantic(
        run_fig13,
        kwargs={
            "setup": setup,
            "k_values": (5, 10, 20, 30, 40, 50),
            "requests": min(BENCH_REQUESTS, 300),
        },
        rounds=1,
        iterations=1,
    )
    record(results_dir, "fig13_bounding", result.format())

    for i, k in enumerate(result.k_values):
        linear = result.cells["linear"][i]
        exponential = result.cells["exponential"][i]
        secure = result.cells["secure"][i]
        optimal = result.cells["optimal"][i]
        # (a) bounding cost: conservative linear pays the most; OPT the
        # least.  (Secure sits between linear and exponential at small k
        # and can undercut exponential at large k, where its N-adaptive
        # increments converge in fewer rounds.)
        assert linear.avg_bounding_cost > secure.avg_bounding_cost
        assert optimal.avg_bounding_cost < exponential.avg_bounding_cost
        assert optimal.avg_bounding_cost < secure.avg_bounding_cost
        # (b) request cost ratio: exponential loosest, secure near OPT.
        assert exponential.avg_request_ratio > secure.avg_request_ratio
        assert secure.avg_request_ratio < 1.2
        # (c) total: secure best progressive, close to OPT.
        assert secure.avg_total_cost <= linear.avg_total_cost * 1.01
        assert secure.avg_total_cost <= exponential.avg_total_cost * 1.01
        assert secure.avg_total_cost < 1.2 * optimal.avg_total_cost
        # (d) CPU: everything far below a millisecond per request at k<=50.
        assert secure.avg_cpu_ms < 5.0
