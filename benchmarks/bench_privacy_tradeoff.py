"""Extension (paper §VII): the privacy-loss / cost trade-off curve."""

from conftest import BENCH_REQUESTS, record

from repro.experiments.privacy_tradeoff import run_privacy_tradeoff


def test_privacy_floor_tradeoff(benchmark, setup, results_dir):
    result = benchmark.pedantic(
        run_privacy_tradeoff,
        kwargs={"setup": setup, "requests": min(BENCH_REQUESTS, 200)},
        rounds=1,
        iterations=1,
    )
    record(results_dir, "privacy_tradeoff", result.format())

    rows = result.rows
    # Privacy improves monotonically with the floor...
    leaks = [row.worst_leak_bits for row in rows]
    assert leaks == sorted(leaks, reverse=True)
    # ...while the request cost (weakly) deteriorates.
    assert rows[-1].avg_request_ratio >= rows[0].avg_request_ratio - 1e-9
    # The guarantee holds: with floor f, the worst interval is >= f wide
    # (up to float rounding of the width subtraction).
    for row in rows[1:]:
        assert row.mean_interval >= row.floor - 1e-12
