"""Durable state: snapshot/restore/replay cost vs rebuild-from-scratch.

Regenerates ``BENCH_persist.json``: for each population size the full
persistence loop is exercised once —

* a :class:`CloakingEngine` with persistence enabled serves requests
  and consumes a churn schedule (every batch journaled + fsync'd before
  mutation),
* ``checkpoint()`` is timed (snapshot write + journal truncation) and
  the committed snapshot's on-disk footprint recorded,
* the tail of the schedule lands in the journal, the engine "crashes",
  and ``CloakingEngine.restore`` is timed end to end — that is the
  **replay** number: snapshot load + journal replay through the live
  churn path (replay necessarily costs what the original batches cost;
  its length is the operator's checkpoint-cadence knob),
* the restored engine checkpoints and "crashes" again immediately —
  that second, journal-empty restore is the **restore** number: the
  warm-restart path a supervisor takes after a clean checkpoint,
* the pre-persistence baseline — rebuilding ``GridIndex`` +
  ``build_wpg_fast`` + a fresh engine from the final positions — is
  timed for comparison, and the restored graph is checked edge-for-edge
  against that rebuild,
* the raw write-ahead log is microbenchmarked separately (append +
  fsync per batch) so WAL overhead is visible in isolation instead of
  being smeared into churn maintenance numbers.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_persist.py \
        --users 10000 50000 --out BENCH_persist.json

The output schema (``bench_persist/v1``)::

    {
      "schema": "bench_persist/v1",
      "seed": 3, "ticks": 8, "requests": 50,
      "sizes": [
        {
          "users": 10000, "delta": ..., "movers_per_tick": 100,
          "snapshot": {"seconds": ..., "bytes": ...},
          "journal": {
            "batches": ..., "moves": ..., "bytes": ...,
            "seconds": ..., "moves_per_second": ...
          },
          "replay": {"seconds": ..., "batches": ...},
          "restore": {"seconds": ...},
          "rebuild": {"seconds": ...},
          "restore_speedup": ...,     # rebuild seconds / restore seconds
          "graphs_equal": true        # restored graph == rebuilt graph
        },
        ...
      ]
    }

The sentinel gates ``snapshot.seconds``, ``restore.seconds``,
``restore_speedup`` and ``journal.moves_per_second`` at the largest
population (``sizes[-1]``).  The script itself exits nonzero when any
restored graph differs from its rebuild or when the largest size's
``restore_speedup`` drops below 1 — restoring must beat rebuilding, or
the subsystem has no reason to exist.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.cloaking.engine import CloakingEngine
from repro.config import SimulationConfig
from repro.datasets.base import PointDataset
from repro.datasets.california import california_like_poi
from repro.errors import ClusteringError
from repro.experiments.workloads import clusterable_users
from repro.graph.build import build_wpg_fast
from repro.persist import ChurnJournal, PersistentStore
from repro.verify.invariants import graph_equality_details

from bench_churn import make_schedule, scaled_delta

MAX_PEERS = 10


def _serve_some(engine: CloakingEngine, hosts: list[int]) -> int:
    """Warm the region cache/registry; returns requests served."""
    served = 0
    for host in hosts:
        try:
            engine.request(host)
        except ClusteringError:
            continue
        served += 1
    return served


def _snapshot_bytes(store: PersistentStore) -> int:
    """On-disk footprint of the newest committed snapshot."""
    newest = max(
        (
            entry
            for entry in store.snapshots_dir.iterdir()
            if (entry / "meta.json").exists()
        ),
        key=lambda entry: entry.name,
    )
    return sum(child.stat().st_size for child in newest.iterdir())


def bench_size(users: int, ticks: int, requests: int, seed: int) -> dict:
    """One full persistence loop at ``users`` population."""
    delta = scaled_delta(users)
    movers = max(1, users // 100)
    config = SimulationConfig(
        user_count=users, delta=delta, max_peers=MAX_PEERS
    )
    dataset = california_like_poi(users, seed=seed)
    graph = build_wpg_fast(dataset, delta, MAX_PEERS)
    schedule = make_schedule(dataset, ticks, movers, delta, seed)
    pool = clusterable_users(graph, config.k)
    hosts = [int(h) for h in pool[:requests]]

    with tempfile.TemporaryDirectory(prefix="bench-persist-") as tmp:
        engine = CloakingEngine(dataset, graph, config)
        store = PersistentStore(Path(tmp) / "store")
        engine.enable_persistence(store)
        _serve_some(engine, hosts)
        pre = max(1, ticks // 2)
        for batch in schedule[:pre]:
            engine.apply_moves(batch)

        t0 = time.perf_counter()
        engine.checkpoint()
        snapshot_seconds = time.perf_counter() - t0
        snapshot_bytes = _snapshot_bytes(store)

        for batch in schedule[pre:]:
            engine.apply_moves(batch)
        engine.disable_persistence()  # crash 1: journal tail to replay

        t0 = time.perf_counter()
        replayed = CloakingEngine.restore(PersistentStore(Path(tmp) / "store"))
        replay_seconds = time.perf_counter() - t0

        replayed.checkpoint()
        replayed.disable_persistence()  # crash 2: clean, journal empty

        t0 = time.perf_counter()
        restored = CloakingEngine.restore(PersistentStore(Path(tmp) / "store"))
        restore_seconds = time.perf_counter() - t0
        restored.disable_persistence()

        positions = list(restored.dataset.points)
        t0 = time.perf_counter()
        rebuilt_dataset = PointDataset(positions)
        rebuilt_graph = build_wpg_fast(rebuilt_dataset, delta, MAX_PEERS)
        CloakingEngine(rebuilt_dataset, rebuilt_graph, config)
        rebuild_seconds = time.perf_counter() - t0
        graphs_equal = (
            graph_equality_details(
                restored.graph, rebuilt_graph, "restored", "rebuilt"
            )
            == []
        )

        # WAL in isolation: append + fsync per batch, no engine attached.
        journal = ChurnJournal(Path(tmp) / "micro.wal")
        moves = sum(len(batch) for batch in schedule)
        journal_bytes = 0
        t0 = time.perf_counter()
        for index, batch in enumerate(schedule):
            journal_bytes += journal.append(index + 1, batch)
        journal_seconds = time.perf_counter() - t0
        journal.close()

    return {
        "users": users,
        "delta": delta,
        "movers_per_tick": movers,
        "snapshot": {
            "seconds": round(snapshot_seconds, 4),
            "bytes": snapshot_bytes,
        },
        "journal": {
            "batches": len(schedule),
            "moves": moves,
            "bytes": journal_bytes,
            "seconds": round(journal_seconds, 4),
            "moves_per_second": round(moves / journal_seconds, 1),
        },
        "replay": {
            "seconds": round(replay_seconds, 4),
            "batches": ticks - pre,
        },
        "restore": {"seconds": round(restore_seconds, 4)},
        "rebuild": {"seconds": round(rebuild_seconds, 4)},
        "restore_speedup": round(rebuild_seconds / restore_seconds, 2),
        "graphs_equal": graphs_equal,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--users",
        type=int,
        nargs="+",
        default=[10_000, 50_000],
        help="population sizes, ascending (default: 10000 50000)",
    )
    parser.add_argument(
        "--ticks", type=int, default=8, help="churn batches (default: 8)"
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=50,
        help="requests served before the checkpoint (default: 50)",
    )
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--out", default="BENCH_persist.json")
    parser.add_argument(
        "--no-gate",
        action="store_true",
        help="skip the restore_speedup >= 1 gate (tiny smoke populations)",
    )
    args = parser.parse_args(argv)
    if args.ticks < 2 or any(u < 2 for u in args.users):
        parser.error("need --ticks >= 2 and every --users >= 2")

    sizes = []
    for users in args.users:
        entry = bench_size(users, args.ticks, args.requests, args.seed)
        sizes.append(entry)
        print(
            f"users={users}: snapshot {entry['snapshot']['seconds']}s "
            f"({entry['snapshot']['bytes']:,} B), restore "
            f"{entry['restore']['seconds']}s vs rebuild "
            f"{entry['rebuild']['seconds']}s "
            f"=> {entry['restore_speedup']}x, replay of "
            f"{entry['replay']['batches']} batch(es) "
            f"{entry['replay']['seconds']}s, journal "
            f"{entry['journal']['moves_per_second']:,} moves/s, "
            f"graphs_equal={entry['graphs_equal']}"
        )

    payload = {
        "schema": "bench_persist/v1",
        "seed": args.seed,
        "ticks": args.ticks,
        "requests": args.requests,
        "sizes": sizes,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")

    clean = all(entry["graphs_equal"] for entry in sizes)
    if not args.no_gate and sizes[-1]["restore_speedup"] < 1.0:
        print(
            f"GATE: restore_speedup {sizes[-1]['restore_speedup']} < 1 at "
            f"{sizes[-1]['users']} users — restoring must beat rebuilding"
        )
        clean = False
    return 0 if clean else 1


if __name__ == "__main__":
    sys.exit(main())
