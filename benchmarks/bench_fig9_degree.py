"""Figure 9: clustering performance under various average WPG degrees.

Regenerates both panels (communication cost and cloaked-region size vs
average degree) for distributed t-Conn, kNN and centralized t-Conn, and
asserts the paper's qualitative shapes.
"""

from conftest import BENCH_REQUESTS, record

from repro.experiments.fig9_degree import run_fig9


def test_fig9_degree(benchmark, setup, results_dir):
    result = benchmark.pedantic(
        run_fig9,
        kwargs={
            "setup": setup,
            "m_values": (4, 8, 16, 32, 64),
            "requests": BENCH_REQUESTS,
        },
        rounds=1,
        iterations=1,
    )
    record(results_dir, "fig9_degree", result.format())

    costs = result.comm_cost_series()
    sizes = result.cloaked_size_series()
    for i in range(len(result.m_values)):
        # Paper shape: kNN cheapest; centralized t-Conn the upper bound.
        assert costs["knn"][i] < costs["t-conn"][i]
        assert costs["t-conn"][i] < costs["centralized t-conn"][i]
        # Region sizes stay in one magnitude band across degrees.
        assert sizes["t-conn"][i] < 10 * sizes["knn"][i]
    # Density increases with M.
    assert result.avg_degrees == tuple(sorted(result.avg_degrees))
