"""Ablation: Algorithm 2 step-1 closure on/off.

DESIGN.md documents two readings of "the smallest valid t-connectivity
cluster": the bare Prim span of size k (paper Fig. 7's walkthrough,
default) and the full t-closed equivalence class (the form Theorem 4.4 is
stated over).  Near the percolation threshold of rank-weighted WPGs the
closed cluster can be an order of magnitude larger — this benchmark
records the cost/size gap that justifies the default.
"""

import statistics

from conftest import record

from repro.analysis.reporting import format_table
from repro.clustering.distributed import DistributedClustering
from repro.datasets import california_like_poi
from repro.experiments.workloads import sample_hosts
from repro.graph.build import build_wpg

USERS = 6000
K = 10


def test_closure_cost_blowup(benchmark, results_dir):
    dataset = california_like_poi(USERS, seed=3)
    graph = build_wpg(dataset, delta=2e-3 * (104770 / USERS) ** 0.5, max_peers=10)
    hosts = sample_hosts(graph, K, 150, seed=9)

    def run(closure):
        algo = DistributedClustering(graph, K, closure=closure)
        costs, sizes = [], []
        for host in hosts:
            try:
                result = algo.request(host)
            except Exception:
                continue
            if not result.from_cache:
                costs.append(result.involved)
                sizes.append(result.size)
        return costs, sizes

    bare_costs, bare_sizes = benchmark.pedantic(
        run, args=(False,), rounds=1, iterations=1
    )
    closed_costs, closed_sizes = run(True)

    table = format_table(
        ["variant", "served", "avg involved", "avg cluster size"],
        [
            ["prim (default)", len(bare_costs), statistics.mean(bare_costs),
             statistics.mean(bare_sizes)],
            ["t-closed", len(closed_costs), statistics.mean(closed_costs),
             statistics.mean(closed_sizes)],
        ],
    )
    record(results_dir, "ablation_closure", table)
    # Closure gathers strictly more users per request on clustered data.
    assert statistics.mean(closed_costs) > statistics.mean(bare_costs)
