"""Table I: parameter settings, regenerated from the live configuration."""

from conftest import record

from repro.experiments.tables import table1_text


def test_table1(benchmark, results_dir):
    text = benchmark.pedantic(table1_text, rounds=1, iterations=1)
    record(results_dir, "table1", text)
    assert "104770" in text
