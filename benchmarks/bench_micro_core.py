"""Micro-benchmarks of the core primitives (real multi-round timings).

Unlike the figure benchmarks (one-shot macro experiments), these measure
the steady-state cost of the operations a deployment performs per
request: WPG construction, dendrogram building, a distributed clustering
request, and a secure bounding run.
"""

import pytest

from repro.bounding.boxing import secure_bounding_box
from repro.bounding.presets import paper_policy
from repro.clustering.distributed import DistributedClustering
from repro.config import SimulationConfig
from repro.datasets import california_like_poi
from repro.experiments.workloads import sample_hosts
from repro.graph.build import build_wpg
from repro.graph.dendrogram import single_linkage_dendrogram

USERS = 6000
DELTA = 2e-3 * (104770 / USERS) ** 0.5


@pytest.fixture(scope="module")
def dataset():
    return california_like_poi(USERS, seed=3)


@pytest.fixture(scope="module")
def graph(dataset):
    return build_wpg(dataset, DELTA, 10)


def test_wpg_build(benchmark, dataset):
    graph = benchmark.pedantic(
        build_wpg, args=(dataset, DELTA, 10), rounds=3, iterations=1
    )
    assert graph.vertex_count == USERS


def test_dendrogram_build(benchmark, graph):
    roots = benchmark.pedantic(
        single_linkage_dendrogram, args=(graph,), rounds=3, iterations=1
    )
    assert sum(root.size for root in roots) == USERS


def test_distributed_request(benchmark, graph):
    hosts = iter(sample_hosts(graph, 10, 400, seed=4))

    def one_request():
        algo = DistributedClustering(graph, 10)
        return algo.request(next(hosts))

    result = benchmark.pedantic(one_request, rounds=30, iterations=1)
    assert result.size >= 10


def test_secure_bounding_run(benchmark, dataset, graph):
    config = SimulationConfig(user_count=USERS, delta=DELTA)
    algo = DistributedClustering(graph, 10)
    host = sample_hosts(graph, 10, 1, seed=5)[0]
    members = sorted(algo.request(host).members)
    points = [dataset[i] for i in members]

    def bound():
        return secure_bounding_box(
            points,
            host_index=0,
            policy_factory=lambda: paper_policy("secure", len(points), config),
        )

    result = benchmark.pedantic(bound, rounds=30, iterations=1)
    assert all(result.region.contains(p) for p in points)
