"""Dynamic-population churn: incremental maintenance vs rebuild-per-tick.

Regenerates ``BENCH_churn.json``: a sustained interleaved workload
(random-waypoint move batches + cloaking requests, tick after tick)
served two ways from identical schedules —

* **incremental** — one long-lived :class:`CloakingEngine` whose grid
  and WPG are patched in place by ``engine.apply_moves`` (the churn
  runtime), with the region cache surviving across ticks;
* **rebuild** — the pre-churn baseline: every tick tears the world down
  and rebuilds ``GridIndex`` + ``build_wpg_fast`` + a fresh engine from
  the current positions;
* **tree** — the incremental runtime with the cluster-tree fast path
  (``clustering="tree"``): ``apply_moves`` additionally patches the
  persistent :class:`~repro.graph.cluster_tree.ClusterTree`, and every
  request resolves by tree walk.

All paths serve the same host sequence; the final incremental and tree
graphs are cross-checked edge-for-edge against a from-scratch rebuild
of the final positions.  Every failed request is classified *outside*
the latency timing against the exact level-scan oracle
(:func:`repro.verify.oracles.oracle_smallest_cluster`, excluding the
already-assigned users): ``sub_k`` means the oracle agrees no valid
cluster exists (the paper's Fig. 5 failure regime), ``defect`` means
the oracle found one the engine missed — a correctness bug, reported as
a first-class column instead of vanishing into a bare count.  Run as a
script::

    PYTHONPATH=src python benchmarks/bench_churn.py \
        --users 50000 --ticks 20 --out BENCH_churn.json

A fourth section benchmarks the **tuning** layer (:mod:`repro.tuning`)
on a reciprocity-heavy replay of the same churn schedule: each tick,
``revisit_frac`` of the requests come from users who just moved and
already belong to a cluster (a moved user immediately re-requesting a
cloak — the worst case for the demand cache, whose entry was just
invalidated), the rest from the clusterable pool.  The host sequence is
*recorded* during the sharing-off reference run and replayed verbatim
for the sharing-on and relax-on runs; the sharing-on transcript (every
answer's members, region bits, anonymity, and failures) must be
bit-identical to the reference's — the equality gate is never waived,
and the script exits nonzero if it trips.  The relax-on run additionally
enables oracle-gated k-relaxation, so its failure rate may only drop;
any relaxation the exact oracle would have rejected surfaces as a
``defect``.

The output schema (``bench_churn/v3``)::

    {
      "schema": "bench_churn/v3",
      "users": 50000, "delta": 0.0029, "max_peers": 10, "k": 10,
      "seed": 3, "ticks": 20, "movers_per_tick": 500,
      "requests_per_tick": 50,
      "incremental": {
        "maintenance_seconds": ..., "moves_per_second": ...,
        "dirty_users_total": ..., "edges_changed_total": ...,
        "request_seconds": ...,
        "request_latency_ms": {"p50": ..., "p95": ..., "p99": ...},
        "requests": {
          "served": ..., "failed": ...,
          "failures": {"sub_k": ..., "defect": ...},
          "cache_hit_rate": ...
        }
      },
      "rebuild": { ... same minus the churn counters ... },
      "tree": {
        ... same as incremental ...,
        "request_speedup": ...        # incremental req s / tree req s
      },
      "tuning": {
        "revisit_frac": 0.6,
        "sharing_off": {
          "request_seconds": ..., "request_latency_ms": {...},
          "requests": {
            "served": ..., "failed": ...,
            "failures": {"sub_k": ..., "defect": ...},
            "cache_hit_rate": ..., "shared_hit_rate": 0.0,
            "failure_rate": ...
          }
        },
        "sharing_on": { ... same ..., "transcript_equal": true },
        "relax_on": { ... same ..., "relaxed": ... },
        "hit_rate_gain": ...          # sharing_on - sharing_off hit rate
      },
      "maintenance_speedup": ...,   # rebuild seconds / incremental seconds
      "graphs_equal": true,         # incremental final graph == rebuild
      "tree_graphs_equal": true     # tree final graph == rebuild
    }

Failure counts may legitimately differ between the tree path and the
others: the tree is bit-identical to the *closure* reading of
Algorithm 2 (``DistributedClustering(closure=True)``, pinned by
``benchmarks/bench_wpg_scale.py`` and the ``cluster-tree-equal`` fuzz
invariant), while the engine default serves the non-closure reading,
so their registries diverge.  Zero ``defect`` rows is the invariant
every path must hold.

The file is a plain script (no pytest fixtures) so ``pytest benchmarks/``
collects nothing from it; the CI smoke invokes it at a small population
and asserts ``maintenance_speedup >= 1``, both graph equalities, and
zero ``defect`` failures on every path.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.cloaking.engine import CloakingEngine
from repro.config import SimulationConfig
from repro.datasets.base import PointDataset
from repro.datasets.california import california_like_poi
from repro.errors import ClusteringError
from repro.experiments.workloads import clusterable_users
from repro.geometry.point import Point
from repro.graph.build import build_wpg_fast
from repro.mobility.waypoint import RandomWaypointModel
from repro.tuning import TuningPolicy
from repro.verify.invariants import graph_equality_details
from repro.verify.oracles import oracle_smallest_cluster

PAPER_USERS = 104_770
PAPER_DELTA = 2e-3
MAX_PEERS = 10
REVISIT_FRAC = 0.6


def scaled_delta(users: int) -> float:
    """The paper's radio range, scaled to preserve WPG density."""
    return PAPER_DELTA * (PAPER_USERS / users) ** 0.5


def make_schedule(
    dataset, ticks: int, movers_per_tick: int, delta: float, seed: int
) -> list[list[tuple[int, Point]]]:
    """Pre-generate the per-tick move batches (shared by both paths).

    Random-waypoint walkers with speeds on the radio-range scale, a
    ``movers_per_tick`` random subset advancing each tick — the rest of
    the population idles, which is exactly the regime incremental
    maintenance exploits.
    """
    walkers = RandomWaypointModel(
        dataset, min_speed=delta, max_speed=10 * delta, seed=seed
    )
    rng = np.random.default_rng(seed + 1)
    n = len(dataset)
    return [
        walkers.step_subset(
            np.sort(rng.choice(n, size=movers_per_tick, replace=False))
        )
        for _ in range(ticks)
    ]


def make_hosts(
    graph, k: int, ticks: int, requests_per_tick: int, seed: int
) -> list[list[int]]:
    """Per-tick host draws from the t=0 clusterable pool, with repeats."""
    pool = clusterable_users(graph, k)
    rng = np.random.default_rng(seed + 2)
    return [
        [int(h) for h in rng.choice(pool, size=requests_per_tick, replace=True)]
        for _ in range(ticks)
    ]


def _serve(
    engine, k: int, hosts: list[int], latencies: list[float], failures: dict
) -> tuple[int, int, int]:
    """Serve ``hosts`` one by one, timing each; returns (served, failed, hits).

    Failures are classified against the exact oracle *after* the latency
    sample is taken, with the registry state the engine failed under:
    ``sub_k`` when no valid cluster of unassigned users exists (clean),
    ``defect`` when the oracle finds one the engine missed.
    """
    served = failed = hits = 0
    for host in hosts:
        t0 = time.perf_counter()
        try:
            result = engine.request(host)
        except ClusteringError:
            latencies.append(time.perf_counter() - t0)
            failed += 1
            answer = oracle_smallest_cluster(
                engine.graph,
                host,
                k,
                exclude=engine.clustering.registry.assigned_view(),
            )
            failures["sub_k" if answer is None else "defect"] += 1
        else:
            latencies.append(time.perf_counter() - t0)
            served += 1
            hits += bool(result.region_from_cache)
    return served, failed, hits


def _latency_ms(latencies: list[float]) -> dict:
    arr = np.asarray(latencies) * 1e3
    return {
        "p50": round(float(np.percentile(arr, 50)), 4),
        "p95": round(float(np.percentile(arr, 95)), 4),
        "p99": round(float(np.percentile(arr, 99)), 4),
    }


def run_incremental(
    dataset, graph, config, schedule, hosts, clustering=None
) -> tuple[dict, object]:
    """The churn runtime: one engine, patched in place tick after tick.

    ``clustering="tree"`` opts the engine into the cluster-tree fast
    path; the tree's own churn patching then runs (and is charged)
    inside ``apply_moves``.
    """
    engine = CloakingEngine(dataset, graph, config, clustering=clustering)
    maintenance = 0.0
    dirty_total = edges_changed = moves = 0
    latencies: list[float] = []
    failures = {"sub_k": 0, "defect": 0}
    served = failed = hits = 0
    for batch, tick_hosts in zip(schedule, hosts):
        t0 = time.perf_counter()
        patch = engine.apply_moves(batch)
        maintenance += time.perf_counter() - t0
        moves += patch.moved
        dirty_total += patch.dirty_users
        edges_changed += patch.edges_changed
        s, f, h = _serve(engine, config.k, tick_hosts, latencies, failures)
        served, failed, hits = served + s, failed + f, hits + h
    record = {
        "maintenance_seconds": round(maintenance, 4),
        "moves_per_second": round(moves / maintenance, 1),
        "dirty_users_total": dirty_total,
        "edges_changed_total": edges_changed,
        "request_seconds": round(sum(latencies), 4),
        "request_latency_ms": _latency_ms(latencies),
        "requests": {
            "served": served,
            "failed": failed,
            "failures": failures,
            "cache_hit_rate": round(hits / served, 4) if served else 0.0,
        },
    }
    return record, engine.graph


def run_rebuild(dataset, config, schedule, hosts) -> tuple[dict, object]:
    """The pre-churn baseline: full teardown + rebuild every tick."""
    positions = list(dataset.points)
    maintenance = 0.0
    latencies: list[float] = []
    failures = {"sub_k": 0, "defect": 0}
    served = failed = hits = 0
    graph = None
    for batch, tick_hosts in zip(schedule, hosts):
        for user, point in batch:
            positions[user] = point
        t0 = time.perf_counter()
        snapshot = PointDataset(positions)
        graph = build_wpg_fast(snapshot, config.delta, config.max_peers)
        engine = CloakingEngine(snapshot, graph, config)
        maintenance += time.perf_counter() - t0
        s, f, h = _serve(engine, config.k, tick_hosts, latencies, failures)
        served, failed, hits = served + s, failed + f, hits + h
    record = {
        "maintenance_seconds": round(maintenance, 4),
        "request_seconds": round(sum(latencies), 4),
        "request_latency_ms": _latency_ms(latencies),
        "requests": {
            "served": served,
            "failed": failed,
            "failures": failures,
            "cache_hit_rate": round(hits / served, 4) if served else 0.0,
        },
    }
    return record, graph


def _serve_tuning(engine, k: int, hosts, latencies, failures):
    """Serve one tick's hosts for a tuning leg.

    Returns ``(transcript, served, failed, hits, shared, relaxed)``.  The
    transcript entry is the *answer* — members, region bits, anonymity,
    or the typed failure — exactly the surface proactive sharing is not
    allowed to change; cache provenance and cost stay out of it.
    """
    transcript = []
    served = failed = hits = shared = relaxed = 0
    for host in hosts:
        t0 = time.perf_counter()
        try:
            result = engine.request(host)
        except ClusteringError:
            latencies.append(time.perf_counter() - t0)
            failed += 1
            answer = oracle_smallest_cluster(
                engine.graph,
                host,
                k,
                exclude=engine.clustering.registry.assigned_view(),
            )
            failures["sub_k" if answer is None else "defect"] += 1
            transcript.append(("err", host))
        else:
            latencies.append(time.perf_counter() - t0)
            served += 1
            hits += bool(result.region_from_cache)
            shared += bool(result.region_shared)
            relaxed += result.relaxed_k is not None
            transcript.append(
                (
                    host,
                    tuple(sorted(result.cluster.members)),
                    result.region.rect,
                    result.region.anonymity,
                )
            )
    return transcript, served, failed, hits, shared, relaxed


def _tuning_record(latencies, served, failed, hits, shared, failures) -> dict:
    total = served + failed
    return {
        "request_seconds": round(sum(latencies), 4),
        "request_latency_ms": _latency_ms(latencies),
        "requests": {
            "served": served,
            "failed": failed,
            "failures": failures,
            "cache_hit_rate": round(hits / served, 4) if served else 0.0,
            "shared_hit_rate": round(shared / served, 4) if served else 0.0,
            "failure_rate": round(failed / total, 4) if total else 0.0,
        },
    }


def run_tuning_reference(
    dataset, graph, config, schedule, requests_per_tick, revisit_frac, seed
) -> tuple[dict, list, list]:
    """The sharing-off leg: serve on demand AND record the host sequence.

    Each tick draws ``revisit_frac`` of its hosts from *this tick's
    movers that already belong to a cluster* — a moved user immediately
    re-requesting a cloak, which is exactly the request the demand cache
    just lost — and the rest from the t=0 clusterable pool.  Returns the
    record, the per-tick host draws (replayed verbatim by the tuned
    legs), and the answer transcript the tuned legs are gated against.
    """
    engine = CloakingEngine(dataset, graph, config)
    pool = clusterable_users(graph, config.k)
    rng = np.random.default_rng(seed + 5)
    latencies: list[float] = []
    failures = {"sub_k": 0, "defect": 0}
    host_ticks: list[list[int]] = []
    transcript: list = []
    served = failed = hits = shared = 0
    for batch in schedule:
        engine.apply_moves(batch)
        registry = engine.clustering.registry
        movers_assigned = sorted(
            {user for user, _ in batch if user in registry}
        )
        tick_hosts = [
            int(rng.choice(movers_assigned))
            if movers_assigned and rng.random() < revisit_frac
            else int(rng.choice(pool))
            for _ in range(requests_per_tick)
        ]
        host_ticks.append(tick_hosts)
        t, s, f, h, sh, _ = _serve_tuning(
            engine, config.k, tick_hosts, latencies, failures
        )
        transcript.extend(t)
        served, failed = served + s, failed + f
        hits, shared = hits + h, shared + sh
    record = _tuning_record(latencies, served, failed, hits, shared, failures)
    return record, host_ticks, transcript


def run_tuning_replay(
    dataset, graph, config, schedule, host_ticks, tuning
) -> tuple[dict, list]:
    """One tuned leg: identical churn schedule, replayed host sequence."""
    engine = CloakingEngine(dataset, graph, config, tuning=tuning)
    latencies: list[float] = []
    failures = {"sub_k": 0, "defect": 0}
    transcript: list = []
    served = failed = hits = shared = relaxed = 0
    for batch, tick_hosts in zip(schedule, host_ticks):
        engine.apply_moves(batch)
        t, s, f, h, sh, rx = _serve_tuning(
            engine, config.k, tick_hosts, latencies, failures
        )
        transcript.extend(t)
        served, failed = served + s, failed + f
        hits, shared, relaxed = hits + h, shared + sh, relaxed + rx
    record = _tuning_record(latencies, served, failed, hits, shared, failures)
    record["requests"]["relaxed"] = relaxed
    return record, transcript


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=50_000)
    parser.add_argument(
        "--ticks", type=int, default=20, help="move/request rounds (default: 20)"
    )
    parser.add_argument(
        "--movers-per-tick",
        type=int,
        default=None,
        help="users moving each tick (default: 1%% of the population)",
    )
    parser.add_argument(
        "--requests-per-tick",
        type=int,
        default=50,
        help="cloaking requests served after each move batch (default: 50)",
    )
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--out", default="BENCH_churn.json", help="output path"
    )
    args = parser.parse_args(argv)
    if args.users < 2 or args.ticks < 1 or args.requests_per_tick < 1:
        parser.error("need --users >= 2, --ticks >= 1, --requests-per-tick >= 1")
    movers = args.movers_per_tick or max(1, args.users // 100)
    if not 1 <= movers <= args.users:
        parser.error(f"--movers-per-tick must be in [1, {args.users}], got {movers}")

    delta = scaled_delta(args.users)
    config = SimulationConfig(
        user_count=args.users, delta=delta, max_peers=MAX_PEERS
    )
    dataset = california_like_poi(args.users, seed=args.seed)
    graph = build_wpg_fast(dataset, delta, MAX_PEERS)
    schedule = make_schedule(dataset, args.ticks, movers, delta, args.seed)
    hosts = make_hosts(
        graph, config.k, args.ticks, args.requests_per_tick, args.seed
    )

    print(
        f"users={args.users} delta={delta:.2g} ticks={args.ticks} "
        f"movers/tick={movers} requests/tick={args.requests_per_tick}"
    )
    incremental, patched_graph = run_incremental(
        dataset, graph, config, schedule, hosts
    )
    print(
        f"incremental: {incremental['maintenance_seconds']}s maintenance, "
        f"p50 {incremental['request_latency_ms']['p50']}ms, "
        f"p99 {incremental['request_latency_ms']['p99']}ms, "
        f"failures {incremental['requests']['failures']}"
    )
    rebuild, final_graph = run_rebuild(
        california_like_poi(args.users, seed=args.seed), config, schedule, hosts
    )
    print(
        f"rebuild:     {rebuild['maintenance_seconds']}s maintenance, "
        f"p50 {rebuild['request_latency_ms']['p50']}ms, "
        f"p99 {rebuild['request_latency_ms']['p99']}ms, "
        f"failures {rebuild['requests']['failures']}"
    )
    tree_dataset = california_like_poi(args.users, seed=args.seed)
    tree, tree_graph = run_incremental(
        tree_dataset,
        build_wpg_fast(tree_dataset, delta, MAX_PEERS),
        config,
        schedule,
        hosts,
        clustering="tree",
    )
    tree["request_speedup"] = round(
        incremental["request_seconds"] / tree["request_seconds"], 2
    )
    print(
        f"tree:        {tree['maintenance_seconds']}s maintenance, "
        f"p50 {tree['request_latency_ms']['p50']}ms, "
        f"p99 {tree['request_latency_ms']['p99']}ms, "
        f"failures {tree['requests']['failures']}, "
        f"requests {tree['request_speedup']}x vs incremental"
    )

    def tuning_world():
        data = california_like_poi(args.users, seed=args.seed)
        return data, build_wpg_fast(data, delta, MAX_PEERS)

    off_dataset, off_graph = tuning_world()
    sharing_off, host_ticks, off_transcript = run_tuning_reference(
        off_dataset, off_graph, config, schedule,
        args.requests_per_tick, REVISIT_FRAC, args.seed,
    )
    on_dataset, on_graph = tuning_world()
    sharing_on, on_transcript = run_tuning_replay(
        on_dataset, on_graph, config, schedule, host_ticks,
        TuningPolicy(share_regions=True),
    )
    transcript_equal = on_transcript == off_transcript
    sharing_on["transcript_equal"] = transcript_equal
    relax_dataset, relax_graph = tuning_world()
    relax_on, _relax_transcript = run_tuning_replay(
        relax_dataset, relax_graph, config, schedule, host_ticks,
        TuningPolicy(share_regions=True, relax_k=True),
    )
    hit_rate_gain = round(
        sharing_on["requests"]["cache_hit_rate"]
        - sharing_off["requests"]["cache_hit_rate"],
        4,
    )
    tuning = {
        "revisit_frac": REVISIT_FRAC,
        "sharing_off": sharing_off,
        "sharing_on": sharing_on,
        "relax_on": relax_on,
        "hit_rate_gain": hit_rate_gain,
    }
    print(
        f"tuning:      hit rate {sharing_off['requests']['cache_hit_rate']}"
        f" off -> {sharing_on['requests']['cache_hit_rate']} on "
        f"(transcript_equal={transcript_equal}), failure rate "
        f"{sharing_off['requests']['failure_rate']} off -> "
        f"{relax_on['requests']['failure_rate']} relaxed "
        f"({relax_on['requests']['relaxed']} relaxations)"
    )

    graphs_equal = (
        graph_equality_details(patched_graph, final_graph, "incremental", "rebuild")
        == []
    )
    tree_graphs_equal = (
        graph_equality_details(tree_graph, final_graph, "tree", "rebuild") == []
    )
    speedup = round(
        rebuild["maintenance_seconds"] / incremental["maintenance_seconds"], 2
    )
    defects = sum(
        record["requests"]["failures"]["defect"]
        for record in (incremental, rebuild, tree, sharing_off, sharing_on, relax_on)
    )
    print(
        f"maintenance speedup {speedup}x, graphs_equal={graphs_equal}, "
        f"tree_graphs_equal={tree_graphs_equal}, defects={defects}"
    )

    payload = {
        "schema": "bench_churn/v3",
        "users": args.users,
        "delta": delta,
        "max_peers": MAX_PEERS,
        "k": config.k,
        "seed": args.seed,
        "ticks": args.ticks,
        "movers_per_tick": movers,
        "requests_per_tick": args.requests_per_tick,
        "incremental": incremental,
        "rebuild": rebuild,
        "tree": tree,
        "tuning": tuning,
        "maintenance_speedup": speedup,
        "graphs_equal": graphs_equal,
        "tree_graphs_equal": tree_graphs_equal,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    clean = (
        graphs_equal
        and tree_graphs_equal
        and defects == 0
        and transcript_equal
    )
    return 0 if clean else 1


if __name__ == "__main__":
    sys.exit(main())
