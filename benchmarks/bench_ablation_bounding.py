"""Ablation: approximate Equation 5 vs the exact Equation 3 program.

The paper proposes the approximation because the DP "requires N rounds of
differential equation solving, which is CPU intensive" for mobile
devices.  This benchmark quantifies both sides: the increments/costs the
two produce and the CPU gap.
"""

from conftest import record

from repro.analysis.reporting import format_table
from repro.bounding.costmodel import AreaRequestCost
from repro.bounding.distributions import UniformIncrement
from repro.bounding.nbounding import ExactNBounding, n_bounding_increment

CB = 1.0
DIST = UniformIncrement(0.01)
COST = AreaRequestCost(1000.0 * 104770)


def test_exact_dp_vs_approximation(benchmark, results_dir):
    dp = ExactNBounding(DIST, COST, CB)
    rows = []
    for n in (1, 2, 4, 8, 16, 32):
        x_exact, c_exact = dp.level(n)
        x_approx = n_bounding_increment(n, DIST, COST, CB)
        rows.append([n, x_approx, x_exact, x_approx / x_exact, c_exact])
    table = format_table(
        ["N", "approx x", "exact x", "ratio", "exact C*(N)"], rows
    )
    record(results_dir, "ablation_bounding_exact_vs_approx", table)
    # The approximation stays within an order of magnitude of the DP.
    for _n, x_approx, x_exact, ratio, _c in rows:
        assert 0.1 < ratio < 10.0

    # CPU: the approximation per increment...
    benchmark.pedantic(
        n_bounding_increment, args=(16, DIST, COST, CB), rounds=50, iterations=10
    )


def test_exact_dp_cpu_cost(benchmark, results_dir):
    """The DP's cost for one fresh table up to N=32 (cold cache)."""

    def run():
        return ExactNBounding(DIST, COST, CB).level(32)

    x_star, c_star = benchmark.pedantic(run, rounds=3, iterations=1)
    assert x_star > 0
    assert c_star > 0
