"""Extension: clustering quality under noisy RSS rankings.

The paper's rankings are noise-free; this benchmark injects log-normal
shadowing into the RSS model and shows the distributed t-Conn pipeline
degrades gracefully — the measurable substance behind its robustness
claim.
"""

from conftest import BENCH_REQUESTS, record

from repro.experiments.robustness import run_robustness


def test_robustness_to_shadowing(benchmark, setup, results_dir):
    result = benchmark.pedantic(
        run_robustness,
        kwargs={
            "setup": setup,
            "sigmas": (0.0, 2.0, 4.0, 8.0),
            "requests": min(BENCH_REQUESTS, 300),
        },
        rounds=1,
        iterations=1,
    )
    record(results_dir, "robustness_shadowing", result.format())

    series = result.series()
    clean_area = series["avg cloaked size"][0]
    worst_area = max(series["avg cloaked size"])
    # Graceful degradation: even at 8 dB shadowing the cloaked regions
    # stay within 2x of the noise-free rankings'.
    assert worst_area < 2.0 * clean_area
    clean_cost = series["avg comm cost"][0]
    worst_cost = max(series["avg comm cost"])
    assert worst_cost < 2.0 * clean_cost
