"""Extension: clustering quality under noisy RSS rankings and lossy links.

The paper's rankings are noise-free and its protocols failure-oblivious;
this benchmark injects (a) log-normal shadowing into the RSS model and
(b) message loss into the peer network, and shows the distributed t-Conn
pipeline degrades gracefully — the measurable substance behind its
robustness claim.  The message-loss axis also writes a BENCH-style JSON
(``results/BENCH_message_loss.json``, schema ``bench_message_loss/v1``)
recording retry overhead and abort rate per loss level.
"""

import json

from conftest import BENCH_REQUESTS, record

from repro.experiments.robustness import run_message_loss, run_robustness


def test_robustness_to_shadowing(benchmark, setup, results_dir):
    result = benchmark.pedantic(
        run_robustness,
        kwargs={
            "setup": setup,
            "sigmas": (0.0, 2.0, 4.0, 8.0),
            "requests": min(BENCH_REQUESTS, 300),
        },
        rounds=1,
        iterations=1,
    )
    record(results_dir, "robustness_shadowing", result.format())

    series = result.series()
    clean_area = series["avg cloaked size"][0]
    worst_area = max(series["avg cloaked size"])
    # Graceful degradation: even at 8 dB shadowing the cloaked regions
    # stay within 2x of the noise-free rankings'.
    assert worst_area < 2.0 * clean_area
    clean_cost = series["avg comm cost"][0]
    worst_cost = max(series["avg comm cost"])
    assert worst_cost < 2.0 * clean_cost


# Message-level sessions simulate every RPC in Python, so this axis runs
# on a deliberately small world — it measures protocol overhead per
# request, not population-scale throughput.
LOSS_USERS = 300
LOSS_REQUESTS = 40
LOSS_K = 5
LOSS_SEED = 17


def test_robustness_to_message_loss(benchmark, results_dir):
    result = benchmark.pedantic(
        run_message_loss,
        kwargs={
            "drop_rates": (0.0, 0.02, 0.05, 0.10),
            "users": LOSS_USERS,
            "requests": LOSS_REQUESTS,
            "k": LOSS_K,
            "seed": LOSS_SEED,
        },
        rounds=1,
        iterations=1,
    )
    record(results_dir, "robustness_message_loss", result.format())
    payload = result.to_json(LOSS_USERS, LOSS_K, LOSS_SEED)
    (results_dir / "BENCH_message_loss.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    series = result.series()
    # Zero loss is the failure-free baseline: nothing retried, nothing
    # aborted, nobody evicted.
    assert series["retries per request"][0] == 0.0
    assert series["abort rate"][0] == 0.0
    assert series["evictions"][0] == 0.0
    # Retry overhead grows with the loss level and the abort rate stays
    # bounded — the runtime trades messages for completion.
    assert series["retries per request"][-1] > 0.0
    assert series["avg messages"][-1] > series["avg messages"][0]
    assert max(series["abort rate"]) <= 0.5
