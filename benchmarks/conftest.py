"""Shared benchmark configuration.

Scale: the paper runs 104,770 users and S = 2,000 requests.  A full-scale
regeneration takes tens of minutes in pure Python, so the benchmarks
default to a quarter-scale population (26,192 users, 500 requests) with
the radio range scaled to preserve WPG density (see
``ExperimentSetup.paper_default``).  Override with::

    REPRO_BENCH_USERS=104770 REPRO_BENCH_REQUESTS=2000 \
        pytest benchmarks/ --benchmark-only

Every figure benchmark also writes its regenerated series to
``benchmarks/results/<name>.txt`` so the numbers survive pytest's stdout
capture and can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.harness import ExperimentSetup

BENCH_USERS = int(os.environ.get("REPRO_BENCH_USERS", "26192"))
BENCH_REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", "500"))

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def setup() -> ExperimentSetup:
    """One dataset + WPG/partition cache shared by every benchmark."""
    return ExperimentSetup.paper_default(
        users=BENCH_USERS, requests=BENCH_REQUESTS
    )


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def record(results_dir: Path, name: str, text: str) -> None:
    """Persist a regenerated figure/table and echo it for -s runs."""
    scale_note = (
        f"# population={BENCH_USERS} requests={BENCH_REQUESTS} "
        f"(paper: 104770 / 2000)\n"
    )
    (results_dir / f"{name}.txt").write_text(scale_note + text + "\n")
    print(f"\n{scale_note}{text}")
