"""Ablation: Algorithm 1 implementation and semantics choices.

Two design decisions DESIGN.md calls out:

* the dendrogram cut vs the naive literal edge-removal translation
  (identical output, asymptotically cheaper);
* strict t-component semantics vs the greedy edge-skip fixpoint (the
  straggler effect: strict freezes large components, greedy carves them
  into near-k clusters — the behaviour the paper's measurements need).
"""

import statistics

from conftest import record

from repro.analysis.reporting import format_table
from repro.clustering.centralized import greedy_partition, strict_partition
from repro.datasets import california_like_poi
from repro.graph.build import build_wpg

USERS = 4000
K = 10


def _graph():
    dataset = california_like_poi(USERS, seed=3)
    return build_wpg(dataset, delta=2e-3 * (104770 / USERS) ** 0.5, max_peers=10)


def test_dendrogram_vs_naive_strict(benchmark, results_dir):
    graph = _graph()
    fast = benchmark.pedantic(
        strict_partition, args=(graph, K), kwargs={"naive": False},
        rounds=3, iterations=1,
    )
    naive = strict_partition(graph, K, naive=True)
    assert sorted(sorted(c) for c in fast.clusters) == sorted(
        sorted(c) for c in naive.clusters
    )


def test_strict_vs_greedy_cluster_quality(benchmark, results_dir):
    graph = _graph()
    greedy = benchmark.pedantic(
        greedy_partition, args=(graph, K), rounds=1, iterations=1
    )
    strict = strict_partition(graph, K)

    def describe(partition, name):
        sizes = sorted(len(c) for c in partition.clusters)
        return [
            name,
            len(partition.clusters),
            statistics.median(sizes) if sizes else 0,
            sizes[-1] if sizes else 0,
        ]

    table = format_table(
        ["semantics", "clusters", "median size", "max size"],
        [describe(strict, "strict"), describe(greedy, "greedy")],
    )
    record(results_dir, "ablation_partition_semantics", table)

    greedy_max = max(len(c) for c in greedy.clusters)
    strict_max = max(len(c) for c in strict.clusters)
    # The straggler effect: strict freezes whole components (hundreds of
    # users) that greedy carves into near-k clusters.  A greedy cluster
    # can exceed 2k - 1 only when every split of it would strand a piece,
    # which keeps it within a small multiple of k.
    assert greedy_max < 3 * K
    assert strict_max > 2 * greedy_max
