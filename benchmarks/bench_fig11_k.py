"""Figure 11: clustering performance under various anonymity levels k."""

from conftest import BENCH_REQUESTS, record

from repro.experiments.fig11_k import run_fig11


def test_fig11_k(benchmark, setup, results_dir):
    result = benchmark.pedantic(
        run_fig11,
        kwargs={
            "setup": setup,
            "k_values": (5, 10, 20, 30, 40, 50),
            "requests": BENCH_REQUESTS,
        },
        rounds=1,
        iterations=1,
    )
    record(results_dir, "fig11_k", result.format())

    costs = result.comm_cost_series()
    sizes = result.cloaked_size_series()
    # kNN cost is ~linear in k (its clusters have exactly k members).
    assert costs["knn"][-1] > 3 * costs["knn"][0]
    # Centralized cost never depends on k.
    central = costs["centralized t-conn"]
    assert max(central) - min(central) < 0.05 * max(central)
    # Distributed t-conn grows sub-linearly (saturation, paper Fig. 11a).
    k_ratio = result.k_values[-1] / result.k_values[0]
    assert costs["t-conn"][-1] / costs["t-conn"][0] < k_ratio
    # Region sizes grow with k for every algorithm.
    for algorithm in ("t-conn", "knn"):
        assert sizes[algorithm][-1] > sizes[algorithm][0]
