"""Figure 10: total communication cost vs POI content size ratio."""

from conftest import BENCH_REQUESTS, record

from repro.experiments.fig10_total_cost import run_fig10


def test_fig10_total_cost(benchmark, setup, results_dir):
    result = benchmark.pedantic(
        run_fig10,
        kwargs={"setup": setup, "requests": BENCH_REQUESTS},
        rounds=1,
        iterations=1,
    )
    text = result.format()
    crossover = result.crossover_ratio()
    record(
        results_dir,
        "fig10_total_cost",
        f"{text}\n\nt-conn undercuts knn at POI/msg ratio: {crossover}",
    )

    series = result.total_cost_series()
    for curve in series.values():
        # Total cost grows with the POI content size for every algorithm.
        assert curve == sorted(curve)
    # At ratio 0 (pure clustering cost) kNN wins, as in the paper.
    assert series["knn"][0] < series["t-conn"][0]
