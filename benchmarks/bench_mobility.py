"""Extension: cloaked-region lifetime under mobility.

How fast do regions formed by the (static-snapshot) paper pipeline go
stale once users move?  Measures the re-cloaking cadence a deployment
would need at a given speed profile.
"""

from conftest import record

from repro.config import SimulationConfig
from repro.datasets import california_like_poi
from repro.mobility.lifetime import run_region_lifetime


def test_region_lifetime(benchmark, results_dir):
    users = 8000
    config = SimulationConfig(
        user_count=users, delta=2e-3 * (104_770 / users) ** 0.5
    )
    dataset = california_like_poi(users, seed=37)
    result = benchmark.pedantic(
        run_region_lifetime,
        args=(dataset, config),
        kwargs={"requests": 120, "steps": 8, "dt": 1.0, "max_speed": 0.005},
        rounds=1,
        iterations=1,
    )
    record(results_dir, "mobility_lifetime", result.format())

    # Regions start perfect and decay as users walk.
    assert result.member_coverage[0] == 1.0
    assert result.member_coverage[-1] < result.member_coverage[0]
    # k-anonymity survives longer than full validity: losing one member
    # breaks "fully valid" but usually not the k count.
    for full, anon in zip(result.regions_fully_valid, result.anonymity_preserved):
        assert anon >= full
