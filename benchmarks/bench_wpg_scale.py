"""WPG construction and request-path throughput at production scale.

Regenerates ``BENCH_wpg.json``: scalar vs vectorized build times with an
edge-level equality cross-check, plus batched request throughput,
region-cache hit rate, and an LBS request-cost pass, at each population
size.  Run as a script::

    PYTHONPATH=src python benchmarks/bench_wpg_scale.py \
        --sizes 10000,50000 --requests 2000 --out BENCH_wpg.json

With ``--obs`` (or ``REPRO_OBS=1``) the run records itself through
:mod:`repro.obs` and each size record gains an ``obs`` section: the
per-phase wall-time breakdown (``wpg_build`` / ``clustering`` /
``bounding`` / ``server``), its coverage of the measured wall time, and
the full metrics snapshot (readable with ``python -m repro.obs.report``).

The output schema (``bench_wpg/v4``)::

    {
      "schema": "bench_wpg/v4",
      "max_peers": 10, "k": 10, "seed": 3, "requests": 2000,
      "obs_enabled": false,
      "sizes": [
        {
          "users": 50000, "delta": 0.0029, "edges": 172660,
          "build": {
            "scalar_seconds": ..., "fast_seconds": ...,
            "speedup": ..., "graphs_equal": true
          },
          "requests": {
            "count": 2000, "seconds": ...,
            "requests_per_second": ..., "cache_hit_rate": ...
          },
          "tuning": {                     # proactive sharing, same workload
            "cache_hit_rate": ...,        # == the untuned hit rate
            "shared_hit_rate": ..., "demand_hit_rate": ...,
            "transcript_equal": true      # answers bit-identical to untuned
          },
          "clustering": {                 # phase-1 only, same workload
            "count": 2000, "failed": ...,
            "distributed": {"seconds": ..., "requests_per_second": ...},
            "tree": {
              "build_seconds": ..., "seconds": ...,
              "requests_per_second": ..., "fallbacks": ...
            },
            "speedup": ...,               # distributed s / tree s
            "partitions_equal": true      # same registry, same order
          },
          "server": {
            "pois": 2000, "seconds": ..., "cost_messages": ...
          },
          "obs": {                      # only with --obs / REPRO_OBS=1
            "phases": {"wpg_build": ..., "clustering": ...,
                       "bounding": ..., "server": ...},
            "total_wall_seconds": ...,
            "coverage_of_wall": ...,
            "snapshot": { ... }         # obs/v1 snapshot
          }
        }, ...
      ]
    }

The file is a plain script (no pytest fixtures) so ``pytest benchmarks/``
collects nothing from it; the CI smoke invokes it at a small population
and validates the emitted JSON (including the obs snapshot against
``benchmarks/obs_snapshot_schema.json``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.cloaking.engine import CloakingEngine
from repro.clustering.distributed import DistributedClustering
from repro.clustering.tree import TreeClustering
from repro.config import SimulationConfig
from repro.datasets.california import california_like_poi
from repro.errors import ClusteringError
from repro.experiments.workloads import clusterable_users
from repro.graph.build import build_wpg, build_wpg_fast
from repro.graph.cluster_tree import ClusterTree
from repro.obs import names as metric
from repro.server.costs import request_cost_messages
from repro.server.poidb import POIDatabase

PAPER_USERS = 104_770
PAPER_DELTA = 2e-3
MAX_PEERS = 10
SERVER_POIS = 2_000


def scaled_delta(users: int) -> float:
    """The paper's radio range, scaled to preserve WPG density."""
    return PAPER_DELTA * (PAPER_USERS / users) ** 0.5


def edge_dict(graph) -> dict[tuple[int, int], float]:
    return {edge.key(): edge.weight for edge in graph.edges()}


def _span_total(snapshot: dict, name: str) -> float:
    """Total recorded seconds of span ``name`` (0 when it never fired)."""
    entry = snapshot["spans"].get(name)
    return entry["total"] if entry else 0.0


def _serve_phase1(service, workload: list[int]) -> tuple[float, int]:
    """Time a raw phase-1 request stream; returns (seconds, failures)."""
    failed = 0
    t0 = time.perf_counter()
    for host in workload:
        try:
            service.request(host)
        except ClusteringError:
            failed += 1
    return time.perf_counter() - t0, failed


def _tree_fallbacks() -> float | None:
    if not obs.enabled():
        return None
    return obs.snapshot()["counters"].get(metric.CLUSTERING_TREE_FALLBACKS, 0.0)


def bench_clustering(graph, k: int, workload: list[int]) -> dict:
    """Phase-1 clustering throughput: closure flood vs cluster-tree walk.

    Both services get a fresh registry and the identical host stream; the
    tree's answers are checked registry-identical (same clusters, same
    registration order) against the ``DistributedClustering(closure=True)``
    reference it claims bit-identity with.  The dendrogram build is
    reported separately — it is paid once per population, not per request.
    """
    reference = DistributedClustering(graph, k, closure=True)
    distributed_seconds, distributed_failed = _serve_phase1(reference, workload)

    fallbacks_before = _tree_fallbacks()
    t0 = time.perf_counter()
    tree = ClusterTree(graph)
    tree_build_seconds = time.perf_counter() - t0
    service = TreeClustering(graph, k, tree=tree)
    tree_seconds, tree_failed = _serve_phase1(service, workload)
    fallbacks = (
        None
        if fallbacks_before is None
        else _tree_fallbacks() - fallbacks_before
    )

    partitions_equal = distributed_failed == tree_failed and [
        reference.registry.cluster_by_id(i)
        for i in range(len(reference.registry))
    ] == [
        service.registry.cluster_by_id(i)
        for i in range(len(service.registry))
    ]
    return {
        "count": len(workload),
        "failed": distributed_failed,
        "distributed": {
            "seconds": round(distributed_seconds, 4),
            "requests_per_second": round(
                len(workload) / distributed_seconds, 1
            ),
        },
        "tree": {
            "build_seconds": round(tree_build_seconds, 4),
            "seconds": round(tree_seconds, 4),
            "requests_per_second": round(len(workload) / tree_seconds, 1),
            "fallbacks": fallbacks,
        },
        "speedup": round(distributed_seconds / tree_seconds, 2),
        "partitions_equal": partitions_equal,
    }


def bench_size(users: int, requests: int, seed: int) -> dict:
    """Benchmark one population size; returns the per-size JSON record."""
    if obs.enabled():
        obs.reset()  # one observation window per population size

    dataset = california_like_poi(users, seed=seed)
    delta = scaled_delta(users)

    t0 = time.perf_counter()
    fast = build_wpg_fast(dataset, delta, MAX_PEERS)
    fast_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    scalar = build_wpg(dataset, delta, MAX_PEERS)
    scalar_seconds = time.perf_counter() - t0

    graphs_equal = (
        set(fast.vertices()) == set(scalar.vertices())
        and edge_dict(fast) == edge_dict(scalar)
    )

    config = SimulationConfig(user_count=users, delta=delta, max_peers=MAX_PEERS)
    engine = CloakingEngine(dataset, fast, config)
    # Hosts drawn with replacement: repeats and cluster mates exercise
    # the region cache exactly like a production request stream would.
    pool = clusterable_users(fast, config.k)
    rng = np.random.default_rng(seed)
    workload = [int(h) for h in rng.choice(pool, size=requests, replace=True)]

    t0 = time.perf_counter()
    results = engine.request_many(workload)
    request_seconds = time.perf_counter() - t0
    hits = sum(1 for r in results if r.region_from_cache)

    # The tuning column: the identical workload through a sharing-on
    # engine.  On a static population sharing can only re-label demand
    # hits as shared-slot hits — the answers and the total hit rate must
    # not move, which the transcript flag pins.  Like the scalar rebuild
    # above, this leg is a cross-check, not part of the measured
    # pipeline: its spans and counters must not pollute the obs window.
    from repro.tuning import TuningPolicy

    paused = obs.disable() if obs.enabled() else None
    try:
        shared_engine = CloakingEngine(
            dataset, fast, config, tuning=TuningPolicy(share_regions=True)
        )
        shared_results = shared_engine.request_many(workload)
    finally:
        if paused is not None:
            obs.enable(paused)
    shared_hits = sum(1 for r in shared_results if r.region_shared)
    demand_hits = (
        sum(1 for r in shared_results if r.region_from_cache) - shared_hits
    )

    def answer(r):
        return (
            r.host,
            tuple(sorted(r.cluster.members)),
            r.region.rect,
            r.region.anonymity,
        )

    transcript_equal = list(map(answer, shared_results)) == list(
        map(answer, results)
    )
    tuning_record = {
        "cache_hit_rate": round(
            (shared_hits + demand_hits) / len(shared_results), 4
        ),
        "shared_hit_rate": round(shared_hits / len(shared_results), 4),
        "demand_hit_rate": round(demand_hits / len(shared_results), 4),
        "transcript_equal": transcript_equal,
    }

    # The service-request leg: charge every cloaked region at the LBS
    # server (Cr per candidate POI), one query per served request.
    db = POIDatabase(california_like_poi(SERVER_POIS, seed=seed + 1))
    t0 = time.perf_counter()
    cost_messages = sum(
        request_cost_messages(db, r.region.rect, config) for r in results
    )
    server_seconds = time.perf_counter() - t0

    clustering = bench_clustering(fast, config.k, workload)

    record = {
        "users": users,
        "delta": delta,
        "edges": fast.edge_count,
        "build": {
            "scalar_seconds": round(scalar_seconds, 4),
            "fast_seconds": round(fast_seconds, 4),
            "speedup": round(scalar_seconds / fast_seconds, 2),
            "graphs_equal": graphs_equal,
        },
        "requests": {
            "count": len(results),
            "seconds": round(request_seconds, 4),
            "requests_per_second": round(len(results) / request_seconds, 1),
            "cache_hit_rate": round(hits / len(results), 4),
        },
        "tuning": tuning_record,
        "clustering": clustering,
        "server": {
            "pois": SERVER_POIS,
            "seconds": round(server_seconds, 4),
            "cost_messages": cost_messages,
        },
    }
    if obs.enabled():
        snapshot = obs.snapshot()
        # The four pipeline phases, measured from the inside by their
        # spans.  wpg_build covers the vectorized build only — the scalar
        # rebuild above is the cross-check, not part of the pipeline.
        phases = {
            "wpg_build": _span_total(snapshot, metric.SPAN_BUILD_FAST),
            "clustering": _span_total(snapshot, metric.SPAN_CLUSTERING),
            "bounding": _span_total(snapshot, metric.SPAN_BOUNDING),
            "server": _span_total(snapshot, metric.SPAN_REQUEST_COST),
        }
        total_wall = fast_seconds + request_seconds + server_seconds
        record["obs"] = {
            "phases": {name: round(value, 4) for name, value in phases.items()},
            "total_wall_seconds": round(total_wall, 4),
            "coverage_of_wall": round(sum(phases.values()) / total_wall, 4),
            "snapshot": snapshot,
        }
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        default="10000,50000",
        help="comma-separated population sizes (default: 10000,50000)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=2000,
        help="requests per size for the throughput phase (default: 2000)",
    )
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--out",
        default="BENCH_wpg.json",
        help="output path (default: BENCH_wpg.json)",
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="record per-phase breakdowns via repro.obs (also: REPRO_OBS=1)",
    )
    args = parser.parse_args(argv)
    if args.obs:
        obs.enable()
    if args.requests < 1:
        parser.error(f"--requests must be >= 1, got {args.requests}")
    sizes = [int(s) for s in args.sizes.split(",") if s]
    if not sizes:
        parser.error(f"--sizes has no population sizes: {args.sizes!r}")
    if any(s < 1 for s in sizes):
        parser.error(f"--sizes must all be >= 1, got {sizes}")

    records = []
    for users in sizes:
        record = bench_size(users, args.requests, args.seed)
        build, reqs = record["build"], record["requests"]
        print(
            f"users={users}: build scalar {build['scalar_seconds']}s, "
            f"fast {build['fast_seconds']}s ({build['speedup']}x, "
            f"equal={build['graphs_equal']}), "
            f"{reqs['requests_per_second']} req/s, "
            f"cache hit rate {reqs['cache_hit_rate']}"
        )
        clu = record["clustering"]
        print(
            f"  clustering: distributed "
            f"{clu['distributed']['requests_per_second']} req/s, tree "
            f"{clu['tree']['requests_per_second']} req/s "
            f"({clu['speedup']}x, build {clu['tree']['build_seconds']}s, "
            f"partitions_equal={clu['partitions_equal']})"
        )
        tun = record["tuning"]
        print(
            f"  tuning: {tun['shared_hit_rate']} shared + "
            f"{tun['demand_hit_rate']} demand hits "
            f"(transcript_equal={tun['transcript_equal']})"
        )
        if "obs" in record:
            phases = record["obs"]["phases"]
            breakdown = ", ".join(f"{k} {v}s" for k, v in phases.items())
            print(
                f"  phases: {breakdown} "
                f"(covers {record['obs']['coverage_of_wall']:.0%} of wall)"
            )
        records.append(record)

    payload = {
        "schema": "bench_wpg/v4",
        "max_peers": MAX_PEERS,
        "k": SimulationConfig().k,
        "seed": args.seed,
        "requests": args.requests,
        "obs_enabled": obs.enabled(),
        "sizes": records,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    equal = all(
        r["build"]["graphs_equal"]
        and r["clustering"]["partitions_equal"]
        and r["tuning"]["transcript_equal"]
        for r in records
    )
    return 0 if equal else 1


if __name__ == "__main__":
    sys.exit(main())
